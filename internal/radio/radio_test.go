package radio

import (
	"errors"
	"math"
	"testing"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// testNet builds a channel over a line of n nodes spaced 30 m apart with
// the Micaz profile (range 40 m: each node reaches only direct line
// neighbours).
func testNet(t *testing.T, n int, cfgMut func(*Config)) (*sim.Scheduler, *Channel, []*Transceiver) {
	t.Helper()
	sched := sim.NewScheduler(42)
	layout, err := topo.Line(n, 30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name:       "sensor",
		Profile:    energy.Micaz(),
		HeaderSize: 11,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	ch, err := NewChannel(sched, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*Transceiver, n)
	for i := 0; i < n; i++ {
		xs[i], err = ch.Attach(NodeID(i), OverhearFull, true)
		if err != nil {
			t.Fatal(err)
		}
	}
	return sched, ch, xs
}

func TestUnicastDelivery(t *testing.T) {
	sched, ch, xs := testNet(t, 2, nil)
	var got []Frame
	xs[1].SetOnReceive(func(f Frame) { got = append(got, f) })
	txDone := false
	xs[0].SetOnTxDone(func(Frame) { txDone = true })

	f := Frame{Kind: KindData, Dst: 1, Size: 43, Seq: 7, Payload: "hello"}
	if err := xs[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(got) != 1 {
		t.Fatalf("received %d frames, want 1", len(got))
	}
	if got[0].Payload != "hello" || got[0].Seq != 7 || got[0].Src != 0 {
		t.Errorf("received %+v", got[0])
	}
	if !txDone {
		t.Error("onTxDone not fired")
	}
	if st := ch.Stats(); st.Transmissions != 1 || st.Deliveries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeliveryTiming(t *testing.T) {
	sched, ch, xs := testNet(t, 2, nil)
	var at sim.Time
	xs[1].SetOnReceive(func(Frame) { at = sched.Now() })
	f := Frame{Kind: KindData, Dst: 1, Size: 43}
	if err := xs[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	want := ch.Airtime(43)
	if at != want {
		t.Errorf("delivered at %v, want airtime %v", at, want)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	// 30 m spacing, 40 m range: node 0 cannot reach node 2 (60 m).
	sched, _, xs := testNet(t, 3, nil)
	heard := false
	xs[2].SetOnReceive(func(Frame) { heard = true })
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 2, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if heard {
		t.Error("node 2 heard a frame from 60 m away with 40 m range")
	}
}

func TestBroadcast(t *testing.T) {
	sched, _, xs := testNet(t, 3, nil)
	heard := make([]bool, 3)
	for i := 1; i < 3; i++ {
		i := i
		xs[i].SetOnReceive(func(Frame) { heard[i] = true })
	}
	// Node 1 is in range of both 0 and 2.
	if err := xs[1].Transmit(Frame{Kind: KindControl, Dst: Broadcast, Size: 27}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if heard[1] {
		t.Error("transmitter heard its own frame")
	}
	if !heard[2] {
		t.Error("in-range node 2 missed broadcast")
	}
}

func TestCollisionCorruptsBoth(t *testing.T) {
	// Nodes 0 and 2 both transmit to node 1 simultaneously.
	sched, ch, xs := testNet(t, 3, nil)
	heard := 0
	xs[1].SetOnReceive(func(Frame) { heard++ })
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	if err := xs[2].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if heard != 0 {
		t.Errorf("received %d frames from a collision, want 0", heard)
	}
	if st := ch.Stats(); st.Collisions != 2 {
		t.Errorf("Collisions = %d, want 2", st.Collisions)
	}
}

func TestPartialOverlapCollision(t *testing.T) {
	sched, _, xs := testNet(t, 3, nil)
	heard := 0
	xs[1].SetOnReceive(func(Frame) { heard++ })
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 430}); err != nil {
		t.Fatal(err)
	}
	// Second transmission starts mid-way through the first.
	sched.After(sim.Time(1*time.Millisecond), func() {
		if err := xs[2].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
			t.Fatal(err)
		}
	})
	sched.Run()
	if heard != 0 {
		t.Errorf("received %d frames from overlapping arrivals, want 0", heard)
	}
}

func TestHalfDuplex(t *testing.T) {
	// Node 1 transmitting cannot simultaneously receive from node 0.
	sched, _, xs := testNet(t, 2, nil)
	heard := 0
	xs[1].SetOnReceive(func(Frame) { heard++ })
	if err := xs[1].Transmit(Frame{Kind: KindData, Dst: 0, Size: 430}); err != nil {
		t.Fatal(err)
	}
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if heard != 0 {
		t.Errorf("half-duplex node received %d frames while transmitting", heard)
	}
}

func TestTransmitWhileTransmittingRejected(t *testing.T) {
	_, _, xs := testNet(t, 2, nil)
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 430}); err != nil {
		t.Fatal(err)
	}
	err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43})
	if !errors.Is(err, ErrRadioBusy) {
		t.Errorf("second Transmit = %v, want ErrRadioBusy", err)
	}
}

func TestPowerCycle(t *testing.T) {
	sched := sim.NewScheduler(1)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(sched, Config{
		Name:          "wifi",
		Profile:       energy.Lucent11(),
		Range:         40,
		WakeupLatency: 2 * time.Millisecond,
		HeaderSize:    58,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.Attach(0, OverhearFull, false)
	if err != nil {
		t.Fatal(err)
	}
	if x.On() {
		t.Fatal("high-power radio started on")
	}
	if err := x.Transmit(Frame{Kind: KindData, Dst: 1, Size: 100}); !errors.Is(err, ErrRadioOff) {
		t.Errorf("Transmit while off = %v, want ErrRadioOff", err)
	}

	woke := false
	x.SetOnWake(func() { woke = true })
	x.PowerOn()
	if x.On() {
		t.Error("radio usable before wake-up latency elapsed")
	}
	if !x.Waking() {
		t.Error("radio not in waking state")
	}
	sched.Run()
	if !x.On() || !woke {
		t.Error("radio did not complete wake-up")
	}
	// Energy: fixed wake-up charge plus idle draw during the latency.
	want := energy.Lucent11().Wakeup.Joules() +
		energy.Lucent11().Idle.Watts()*0.002
	if got := x.Meter().Total().Joules(); math.Abs(got-want) > 1e-12 {
		t.Errorf("wake-up energy = %v J, want %v J", got, want)
	}
	if err := x.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if x.On() {
		t.Error("radio still on after PowerOff")
	}
}

func TestPowerOnIdempotent(t *testing.T) {
	sched, _, xs := testNet(t, 2, nil)
	xs[0].PowerOn() // already on: no-op
	sched.Run()
	if got := xs[0].Meter().Wakeups(); got != 0 {
		t.Errorf("PowerOn on running radio charged %d wakeups", got)
	}
}

func TestPowerOffAbortsReception(t *testing.T) {
	sched, _, xs := testNet(t, 2, nil)
	heard := 0
	xs[1].SetOnReceive(func(Frame) { heard++ })
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 430}); err != nil {
		t.Fatal(err)
	}
	sched.After(sim.Time(500*time.Microsecond), func() {
		if err := xs[1].PowerOff(); err != nil {
			t.Errorf("PowerOff: %v", err)
		}
	})
	sched.Run()
	if heard != 0 {
		t.Errorf("powered-off node completed %d receptions", heard)
	}
}

func TestPowerOffDuringTxRejected(t *testing.T) {
	_, _, xs := testNet(t, 2, nil)
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 430}); err != nil {
		t.Fatal(err)
	}
	if err := xs[0].PowerOff(); !errors.Is(err, ErrRadioBusy) {
		t.Errorf("PowerOff mid-tx = %v, want ErrRadioBusy", err)
	}
}

func TestOffRadioHearsNothingAndSpendsNothing(t *testing.T) {
	sched := sim.NewScheduler(1)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(sched, Config{
		Name: "wifi", Profile: energy.Cabletron(), Range: 250, HeaderSize: 58,
	}, layout)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := ch.Attach(0, OverhearFull, true)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := ch.Attach(1, OverhearFull, false) // off
	if err != nil {
		t.Fatal(err)
	}
	heard := false
	rx.SetOnReceive(func(Frame) { heard = true })
	if err := tx.Transmit(Frame{Kind: KindData, Dst: 1, Size: 1082}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if heard {
		t.Error("off radio received a frame")
	}
	if got := rx.Meter().Total(); got != 0 {
		t.Errorf("off radio consumed %v", got)
	}
}

func TestNoiseLoss(t *testing.T) {
	sched, ch, xs := testNet(t, 2, func(c *Config) { c.LossProb = 1.0 - 1e-12 })
	heard := 0
	xs[1].SetOnReceive(func(Frame) { heard++ })
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * sim.Time(10*time.Millisecond)
		if _, err := sched.Schedule(at, func() {
			if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 43}); err != nil {
				t.Errorf("Transmit: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if heard != 0 {
		t.Errorf("heard %d frames with loss probability ~1", heard)
	}
	if st := ch.Stats(); st.NoiseLosses != 10 {
		t.Errorf("NoiseLosses = %d, want 10", st.NoiseLosses)
	}
}

func TestTxEnergyAccounting(t *testing.T) {
	sched, ch, xs := testNet(t, 2, nil)
	size := units.ByteSize(43)
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: size}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	airtime := ch.Airtime(size)
	p := energy.Micaz()
	wantTx := p.Tx.Over(airtime).Joules()
	wantRx := p.Rx.Over(airtime).Joules()
	gotTx := xs[0].Meter().ByState()[energy.Tx].Joules()
	gotRx := xs[1].Meter().ByState()[energy.Rx].Joules()
	if math.Abs(gotTx-wantTx) > 1e-12 {
		t.Errorf("tx energy = %v, want %v", gotTx, wantTx)
	}
	if math.Abs(gotRx-wantRx) > 1e-12 {
		t.Errorf("rx energy = %v, want %v", gotRx, wantRx)
	}
}

func TestOverhearingPolicies(t *testing.T) {
	// Node 1 transmits to node 0; node 2 (in range of 1) overhears.
	run := func(policy OverhearPolicy) units.Energy {
		sched := sim.NewScheduler(1)
		layout, err := topo.Line(3, 30)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := NewChannel(sched, Config{
			Name: "sensor", Profile: energy.Micaz(), HeaderSize: 11,
		}, layout)
		if err != nil {
			t.Fatal(err)
		}
		var xs [3]*Transceiver
		for i := range xs {
			if xs[i], err = ch.Attach(NodeID(i), policy, true); err != nil {
				t.Fatal(err)
			}
		}
		if err := xs[1].Transmit(Frame{Kind: KindData, Dst: 0, Size: 43}); err != nil {
			t.Fatal(err)
		}
		sched.Run()
		// Compare the overhearing-related ledgers: Micaz idles at its rx
		// draw, so the total would hide the differences behind idle cost.
		by := xs[2].Meter().ByState()
		return by[energy.Rx] + by[energy.Overhear]
	}

	free := run(OverhearFree)
	header := run(OverhearHeaderOnly)
	full := run(OverhearFull)
	if free != 0 {
		t.Errorf("OverhearFree charged %v rx energy", free)
	}
	p := energy.Micaz()
	wantHeader := p.Rx.Over(p.Rate.TimeFor(11)).Joules()
	if math.Abs(header.Joules()-wantHeader) > 1e-12 {
		t.Errorf("OverhearHeaderOnly charged %v, want %v J", header, wantHeader)
	}
	wantFull := p.Rx.Over(p.Rate.TimeFor(43)).Joules()
	if math.Abs(full.Joules()-wantFull) > 1e-12 {
		t.Errorf("OverhearFull charged %v, want %v J", full, wantFull)
	}
	if !(free < header && header < full) {
		t.Errorf("policy ordering violated: free=%v header=%v full=%v", free, header, full)
	}
}

func TestBusyCarrierSense(t *testing.T) {
	sched, _, xs := testNet(t, 2, nil)
	if xs[1].Busy() {
		t.Error("idle radio reports busy")
	}
	if err := xs[0].Transmit(Frame{Kind: KindData, Dst: 1, Size: 430}); err != nil {
		t.Fatal(err)
	}
	if !xs[0].Busy() {
		t.Error("transmitting radio reports idle")
	}
	// Receiver senses the carrier as soon as the arrival starts.
	stepped := false
	sched.After(0, func() {
		stepped = xs[1].Busy()
	})
	sched.Run()
	if !stepped {
		t.Error("receiver did not sense carrier during arrival")
	}
	if xs[0].Busy() || xs[1].Busy() {
		t.Error("radios still busy after channel drained")
	}
}

func TestAttachValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(sched, Config{Name: "s", Profile: energy.Micaz()}, layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Attach(5, OverhearFull, true); err == nil {
		t.Error("Attach outside layout did not error")
	}
	if _, err := ch.Attach(0, OverhearFull, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Attach(0, OverhearFull, true); !errors.Is(err, ErrAlreadyAttached) {
		t.Errorf("duplicate Attach = %v, want ErrAlreadyAttached", err)
	}
}

func TestChannelConfigValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "a", Profile: energy.Micaz(), LossProb: -0.1},
		{Name: "b", Profile: energy.Micaz(), LossProb: 1},
		{Name: "c", Profile: energy.Micaz(), Range: -1},
		{Name: "d", Profile: energy.Micaz(), WakeupLatency: -time.Second},
		{Name: "e", Profile: energy.Profile{}},
	}
	for _, cfg := range bad {
		if _, err := NewChannel(sched, cfg, layout); err == nil {
			t.Errorf("NewChannel accepted invalid config %+v", cfg)
		}
	}
	if _, err := NewChannel(sched, Config{Name: "ok", Profile: energy.Micaz()}, nil); err == nil {
		t.Error("NewChannel accepted nil layout")
	}
}

func TestRangeDefaultsToProfile(t *testing.T) {
	sched := sim.NewScheduler(1)
	layout, err := topo.Line(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(sched, Config{Name: "s", Profile: energy.Micaz()}, layout)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.Config().Range; got != energy.Micaz().Range {
		t.Errorf("Range = %v, want profile default %v", got, energy.Micaz().Range)
	}
}

func TestFrameHelpers(t *testing.T) {
	u := Frame{Kind: KindData, Src: 1, Dst: 2, Size: 43, Seq: 9}
	if !u.IsUnicast() {
		t.Error("unicast frame reported broadcast")
	}
	b := Frame{Kind: KindControl, Dst: Broadcast}
	if b.IsUnicast() {
		t.Error("broadcast frame reported unicast")
	}
	if got := u.String(); got != "data 1->2 seq=9 size=43 B" {
		t.Errorf("String() = %q", got)
	}
	if KindAck.String() != "ack" || KindControl.String() != "control" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}
