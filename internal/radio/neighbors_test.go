package radio

import (
	"math/rand"
	"sort"
	"testing"

	"bulktx/internal/energy"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// TestNeighborIndexMatchesBruteForce checks the precomputed per-node
// neighbor lists against brute-force InRange enumeration on random
// layouts of varying density.
func TestNeighborIndexMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 2 + rng.Intn(60)
		field := units.Meters(50 + rng.Float64()*250)
		layout, err := topo.Random(n, field, rng)
		if err != nil {
			t.Fatalf("Random layout: %v", err)
		}
		cfg := Config{
			Name:    "test",
			Profile: energy.Micaz(),
			Range:   units.Meters(10 + rng.Float64()*100),
		}
		ch, err := NewChannel(sim.NewScheduler(1), cfg, layout)
		if err != nil {
			t.Fatalf("NewChannel: %v", err)
		}
		for i := 0; i < n; i++ {
			want := layout.Neighbors(i, cfg.Range)
			sort.Ints(want)
			got := ch.Neighbors(NodeID(i))
			if len(got) != len(want) {
				t.Fatalf("trial %d node %d: index has %d neighbors %v, brute force %d %v",
					trial, i, len(got), got, len(want), want)
			}
			for k := range want {
				if int(got[k]) != want[k] {
					t.Fatalf("trial %d node %d: index %v, brute force %v", trial, i, got, want)
				}
			}
			// Pre-sorted invariant: ascending IDs, self excluded.
			for k := 1; k < len(got); k++ {
				if got[k-1] >= got[k] {
					t.Fatalf("trial %d node %d: neighbor list not ascending: %v", trial, i, got)
				}
			}
			for _, id := range got {
				if int(id) == i {
					t.Fatalf("trial %d node %d: neighbor list contains self: %v", trial, i, got)
				}
			}
		}
	}
}

// TestLazyAndEagerIndexIdentical holds the lazily memoized spatial-hash
// neighbor rows (the default) to the eagerly materialized index's exact
// output — same IDs, same ascending order — across random, clustered,
// and degenerate layouts (all co-located, all out of range, N <= 3).
func TestLazyAndEagerIndexIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	colocated := make([]topo.Position, 12)
	for i := range colocated {
		colocated[i] = topo.Position{X: 5, Y: 9}
	}
	mk := func(l *topo.Layout, err error) *topo.Layout {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	layouts := map[string]*topo.Layout{
		"random":    mk(topo.Random(80, 250, rng)),
		"clustered": mk(topo.Clustered(120, 5, 300, 15, rng)),
		"colocated": topo.NewLayout(colocated),
		"sparse":    mk(topo.Random(30, 100000, rng)), // all out of range
		"pair":      mk(topo.Grid(2, 100)),
		"triple":    mk(topo.Grid(3, 100)),
		"single":    mk(topo.Grid(1, 100)),
	}
	for name, layout := range layouts {
		// Range 0 would resolve to the profile default, so the "nobody in
		// range" case uses a tiny positive range instead.
		for _, r := range []units.Meters{0.001, 40, 500} {
			cfg := Config{Name: "lazy", Profile: energy.Micaz(), Range: r}
			lazy, err := NewChannel(sim.NewScheduler(1), cfg, layout)
			if err != nil {
				t.Fatalf("%s: lazy channel: %v", name, err)
			}
			cfg.EagerIndex = true
			eager, err := NewChannel(sim.NewScheduler(1), cfg, layout)
			if err != nil {
				t.Fatalf("%s: eager channel: %v", name, err)
			}
			for i := 0; i < layout.Len(); i++ {
				got, want := lazy.Neighbors(NodeID(i)), eager.Neighbors(NodeID(i))
				if len(got) != len(want) {
					t.Fatalf("%s r=%v node %d: lazy %v, eager %v", name, cfg.Range, i, got, want)
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("%s r=%v node %d: lazy %v, eager %v", name, cfg.Range, i, got, want)
					}
				}
				// Memoization must return the same row on repeat lookup.
				if again := lazy.Neighbors(NodeID(i)); len(again) != len(got) {
					t.Fatalf("%s node %d: memoized row changed size", name, i)
				}
			}
		}
	}
}

// TestPoolReuseIsDeterministic runs the same broadcast workload three
// times out of one shared Pool (reset between runs) and once unpooled,
// and requires identical channel stats and reception logs every time:
// recycled transceivers, arrivals and neighbor rows must leave no state
// behind.
func TestPoolReuseIsDeterministic(t *testing.T) {
	run := func(pool *Pool) (Stats, []NodeID) {
		rng := rand.New(rand.NewSource(5))
		layout, err := topo.Random(30, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		sched := sim.NewScheduler(1)
		cfg := Config{Name: "t", Profile: energy.Micaz(), Range: 60, Pool: pool}
		ch, err := NewChannel(sched, cfg, layout)
		if err != nil {
			t.Fatal(err)
		}
		var log []NodeID
		xcvrs := make([]*Transceiver, layout.Len())
		for i := range xcvrs {
			x, err := ch.Attach(NodeID(i), OverhearFull, true)
			if err != nil {
				t.Fatal(err)
			}
			id := NodeID(i)
			x.SetOnReceive(func(f Frame) { log = append(log, id) })
			xcvrs[i] = x
		}
		for _, x := range xcvrs {
			if err := x.Transmit(Frame{Kind: KindData, Dst: Broadcast, Size: 16}); err != nil {
				t.Fatal(err)
			}
			sched.Run()
		}
		return ch.Stats(), log
	}

	wantStats, wantLog := run(nil)
	pool := &Pool{}
	for trial := 0; trial < 3; trial++ {
		gotStats, gotLog := run(pool)
		if gotStats != wantStats {
			t.Fatalf("trial %d: stats %+v, want %+v", trial, gotStats, wantStats)
		}
		if len(gotLog) != len(wantLog) {
			t.Fatalf("trial %d: %d receptions, want %d", trial, len(gotLog), len(wantLog))
		}
		for i := range wantLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("trial %d: reception %d by %d, want %d", trial, i, gotLog[i], wantLog[i])
			}
		}
		pool.Reset()
	}
}

// TestBroadcastReachesExactlyNeighborSet transmits from every node of a
// random layout and checks that exactly the attached in-range nodes hear
// the frame.
func TestBroadcastReachesExactlyNeighborSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layout, err := topo.Random(25, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler(1)
	cfg := Config{Name: "test", Profile: energy.Micaz(), Range: 60}
	ch, err := NewChannel(sched, cfg, layout)
	if err != nil {
		t.Fatal(err)
	}
	// Leave every third node unattached: the dense table must skip the
	// holes without delivering to (or crashing on) them.
	xcvrs := make([]*Transceiver, layout.Len())
	for i := range xcvrs {
		if i%3 == 2 {
			continue
		}
		x, err := ch.Attach(NodeID(i), OverhearFull, true)
		if err != nil {
			t.Fatal(err)
		}
		xcvrs[i] = x
	}
	heard := make(map[NodeID][]NodeID)
	for i, x := range xcvrs {
		if x == nil {
			continue
		}
		i := NodeID(i)
		x.SetOnReceive(func(f Frame) { heard[f.Src] = append(heard[f.Src], i) })
	}
	for i, x := range xcvrs {
		if x == nil {
			continue
		}
		if err := x.Transmit(Frame{Kind: KindData, Dst: Broadcast, Size: 16}); err != nil {
			t.Fatalf("Transmit from %d: %v", i, err)
		}
		sched.Run() // serialize transmissions so nothing collides
	}
	for i, x := range xcvrs {
		if x == nil {
			continue
		}
		var want []NodeID
		for _, nb := range layout.Neighbors(i, cfg.Range) {
			if xcvrs[nb] != nil {
				want = append(want, NodeID(nb))
			}
		}
		got := heard[NodeID(i)]
		if len(got) != len(want) {
			t.Fatalf("tx from %d heard by %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("tx from %d heard by %v, want %v (order must be ascending)", i, got, want)
			}
		}
	}
}

// TestLookupBounds exercises the dense-table bounds checks.
func TestLookupBounds(t *testing.T) {
	layout, err := topo.Grid(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(sim.NewScheduler(1), Config{Name: "t", Profile: energy.Micaz()}, layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Attach(1, OverhearFull, true); err != nil {
		t.Fatal(err)
	}
	if got := ch.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
	if _, ok := ch.Lookup(1); !ok {
		t.Error("Lookup(1) missed an attached node")
	}
	for _, id := range []NodeID{2, NodeID(-1), 4, 1000} {
		if _, ok := ch.Lookup(id); ok {
			t.Errorf("Lookup(%d) = true, want false", id)
		}
	}
	if got := ch.Neighbors(NodeID(-5)); got != nil {
		t.Errorf("Neighbors(-5) = %v, want nil", got)
	}
	if got := ch.Neighbors(99); got != nil {
		t.Errorf("Neighbors(99) = %v, want nil", got)
	}
	if _, err := ch.Attach(4, OverhearFull, true); err == nil {
		t.Error("Attach(4) beyond layout succeeded")
	}
	if _, err := ch.Attach(1, OverhearFull, true); err == nil {
		t.Error("duplicate Attach succeeded")
	}
}
