package radio

import (
	"fmt"
	"math/rand"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// Config describes one radio technology instantiated as a channel.
type Config struct {
	// Name labels the channel in logs and stats ("sensor", "802.11").
	Name string
	// Profile supplies rate and power draws for all transceivers on the
	// channel.
	Profile energy.Profile
	// Range overrides the profile's transmission range when positive
	// (the paper gives Lucent 11 Mbps the sensor radio's 40 m range).
	Range units.Meters
	// LossProb is an independent corruption probability applied to every
	// frame reception (channel noise, in addition to collisions).
	LossProb float64
	// LossAt, when non-nil, replaces LossProb with a per-link loss
	// probability computed from the transmitter-receiver distance
	// (e.g. path-loss-shaped noise). Probabilities are evaluated once
	// per link at channel construction and clamped to [0, 1].
	LossAt func(d units.Meters) float64
	// WakeupLatency is the Off -> usable transition time applied by
	// PowerOn. Zero means instant.
	WakeupLatency time.Duration
	// HeaderSize is the technology's frame header; used to charge
	// header-only overhearing.
	HeaderSize units.ByteSize
}

func (c Config) validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	switch {
	case c.LossProb < 0 || c.LossProb >= 1:
		return fmt.Errorf("radio: loss probability %v outside [0,1)", c.LossProb)
	case c.Range < 0:
		return fmt.Errorf("radio: negative range %v", c.Range)
	case c.WakeupLatency < 0:
		return fmt.Errorf("radio: negative wakeup latency %v", c.WakeupLatency)
	case c.HeaderSize < 0:
		return fmt.Errorf("radio: negative header size %v", c.HeaderSize)
	}
	return nil
}

// Stats aggregates channel-wide counters.
type Stats struct {
	// Transmissions counts frames put on the air.
	Transmissions uint64
	// Deliveries counts clean frame receptions passed up to MACs.
	Deliveries uint64
	// Collisions counts receptions corrupted by overlapping arrivals.
	Collisions uint64
	// NoiseLosses counts receptions dropped by the random loss model.
	NoiseLosses uint64
	// Overhears counts clean receptions at nodes other than the
	// destination.
	Overhears uint64
}

// Channel is a broadcast medium shared by all transceivers of one radio
// technology. Propagation is a disk of the configured range; propagation
// delay is negligible at the paper's 200 m scale and modelled as zero.
//
// Topology is static: node positions come from the layout fixed at
// NewChannel time, so the in-range neighbor set of every node is
// precomputed once and each transmission walks a pre-sorted list instead
// of scanning, filtering and sorting the full node set. If layouts ever
// become mutable, the neighbor index must be rebuilt on any position
// change — there is deliberately no invalidation path today.
type Channel struct {
	sched  *sim.Scheduler
	cfg    Config
	layout *topo.Layout
	// nodes is a dense table indexed by NodeID; nil means not attached.
	nodes []*Transceiver
	// neighbors[i] lists the node IDs within range of node i (excluding
	// i itself), sorted ascending for deterministic delivery order.
	neighbors [][]NodeID
	// pairLoss is the dense per-link loss matrix (src*Len+dst), built
	// only when cfg.LossAt is set; nil channels use cfg.LossProb.
	pairLoss []float64
	stats    Stats
	rng      *rand.Rand
}

// NewChannel builds a channel over the given layout and precomputes its
// static neighbor index.
func NewChannel(sched *sim.Scheduler, cfg Config, layout *topo.Layout) (*Channel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if layout == nil || layout.Len() == 0 {
		return nil, fmt.Errorf("radio: channel %q needs a non-empty layout", cfg.Name)
	}
	if cfg.Range == 0 {
		cfg.Range = cfg.Profile.Range
	}
	ch := &Channel{
		sched:     sched,
		cfg:       cfg,
		layout:    layout,
		nodes:     make([]*Transceiver, layout.Len()),
		neighbors: buildNeighborIndex(layout, cfg.Range),
		rng:       sched.Rand(),
	}
	if cfg.LossAt != nil {
		ch.pairLoss = buildPairLoss(layout, cfg.LossAt)
	}
	return ch, nil
}

// buildPairLoss evaluates the distance-dependent loss model once per
// ordered node pair, clamped to [0, 1].
func buildPairLoss(layout *topo.Layout, lossAt func(units.Meters) float64) []float64 {
	n := layout.Len()
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := lossAt(topo.Distance(layout.Position(i), layout.Position(j)))
			if p < 0 {
				p = 0
			} else if p > 1 {
				p = 1
			}
			m[i*n+j] = p
		}
	}
	return m
}

// lossProb returns the noise-loss probability of the src->dst link:
// the per-link matrix when a distance model is configured, the flat
// LossProb otherwise.
func (c *Channel) lossProb(src, dst NodeID) float64 {
	if c.pairLoss == nil {
		return c.cfg.LossProb
	}
	return c.pairLoss[int(src)*len(c.nodes)+int(dst)]
}

// buildNeighborIndex materializes the layout's sorted adjacency lists
// (topo.Layout.AdjacencyLists) as NodeID slices for the transmit path.
func buildNeighborIndex(layout *topo.Layout, r units.Meters) [][]NodeID {
	adj := layout.AdjacencyLists(r)
	nb := make([][]NodeID, len(adj))
	for i, ids := range adj {
		if len(ids) == 0 {
			continue
		}
		out := make([]NodeID, len(ids))
		for k, id := range ids {
			out[k] = NodeID(id)
		}
		nb[i] = out
	}
	return nb
}

// Config returns the channel configuration (with resolved range).
func (c *Channel) Config() Config { return c.cfg }

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// Rate returns the channel bit rate.
func (c *Channel) Rate() units.BitRate { return c.cfg.Profile.Rate }

// Airtime returns the on-air duration of size bytes on this channel.
func (c *Channel) Airtime(size units.ByteSize) time.Duration {
	return c.cfg.Profile.Rate.TimeFor(size)
}

// Len returns the number of layout slots on the channel (attached or
// not); valid NodeIDs are [0, Len).
func (c *Channel) Len() int { return len(c.nodes) }

// Lookup returns the transceiver attached under id, if any. IDs outside
// the layout safely report false.
func (c *Channel) Lookup(id NodeID) (*Transceiver, bool) {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil, false
	}
	t := c.nodes[id]
	return t, t != nil
}

// InRange reports whether two attached nodes are within radio range.
func (c *Channel) InRange(a, b NodeID) bool {
	return topo.InRange(c.layout.Position(int(a)), c.layout.Position(int(b)), c.cfg.Range)
}

// Neighbors returns node id's precomputed in-range neighbor IDs, sorted
// ascending (attached or not). The slice is shared; callers must not
// mutate it.
func (c *Channel) Neighbors(id NodeID) []NodeID {
	if int(id) < 0 || int(id) >= len(c.neighbors) {
		return nil
	}
	return c.neighbors[id]
}

// start transmits f from the transceiver, delivering arrivals to every
// in-range node. Called by Transceiver.Transmit after state checks.
// The neighbor index makes this a single allocation-free walk in
// ascending-ID (deterministic) order.
func (c *Channel) start(f Frame) {
	c.stats.Transmissions++
	airtime := c.Airtime(f.Size)
	for _, id := range c.neighbors[f.Src] {
		if rx := c.nodes[id]; rx != nil {
			rx.arrive(f, airtime)
		}
	}
}
