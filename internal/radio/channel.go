package radio

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// Config describes one radio technology instantiated as a channel.
type Config struct {
	// Name labels the channel in logs and stats ("sensor", "802.11").
	Name string
	// Profile supplies rate and power draws for all transceivers on the
	// channel.
	Profile energy.Profile
	// Range overrides the profile's transmission range when positive
	// (the paper gives Lucent 11 Mbps the sensor radio's 40 m range).
	Range units.Meters
	// LossProb is an independent corruption probability applied to every
	// frame reception (channel noise, in addition to collisions).
	LossProb float64
	// LossAt, when non-nil, replaces LossProb with a per-link loss
	// probability computed from the transmitter-receiver distance
	// (e.g. path-loss-shaped noise), clamped to [0, 1]. It must be a
	// pure function of distance: it is evaluated lazily per reception
	// (never as a dense per-pair table, which would be O(N^2) memory),
	// so a stateful model would break run determinism.
	LossAt func(d units.Meters) float64
	// WakeupLatency is the Off -> usable transition time applied by
	// PowerOn. Zero means instant.
	WakeupLatency time.Duration
	// HeaderSize is the technology's frame header; used to charge
	// header-only overhearing.
	HeaderSize units.ByteSize
	// EagerIndex forces the channel to materialize the full neighbor
	// index at construction (the pre-PR-6 behavior) instead of memoizing
	// per-node rows on first transmission. Delivered frames and their
	// order are identical either way; eager costs O(N + edges) memory up
	// front, lazy costs a spatial-hash query per node actually heard.
	EagerIndex bool
	// Pool, when non-nil, supplies the per-run allocator the channel
	// draws transceivers, neighbor rows and arrival records from; the
	// caller recycles them all with Pool.Reset once the run is over.
	// Nil gives the channel a private, never-reset pool.
	Pool *Pool
}

func (c Config) validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	switch {
	case c.LossProb < 0 || c.LossProb >= 1:
		return fmt.Errorf("radio: loss probability %v outside [0,1)", c.LossProb)
	case c.Range < 0:
		return fmt.Errorf("radio: negative range %v", c.Range)
	case c.WakeupLatency < 0:
		return fmt.Errorf("radio: negative wakeup latency %v", c.WakeupLatency)
	case c.HeaderSize < 0:
		return fmt.Errorf("radio: negative header size %v", c.HeaderSize)
	}
	return nil
}

// Stats aggregates channel-wide counters.
type Stats struct {
	// Transmissions counts frames put on the air.
	Transmissions uint64
	// Deliveries counts clean frame receptions passed up to MACs.
	Deliveries uint64
	// Collisions counts receptions corrupted by overlapping arrivals.
	Collisions uint64
	// NoiseLosses counts receptions dropped by the random loss model.
	NoiseLosses uint64
	// Overhears counts clean receptions at nodes other than the
	// destination.
	Overhears uint64
}

// Channel is a broadcast medium shared by all transceivers of one radio
// technology. Propagation is a disk of the configured range; propagation
// delay is negligible at the paper's 200 m scale and modelled as zero.
//
// Topology is static: node positions come from the layout fixed at
// NewChannel time. The per-node in-range neighbor sets are resolved
// from a uniform-grid spatial hash (topo.SpatialHash, built in O(N))
// and memoized as sorted rows on first use, so channel construction
// never materializes an O(N^2) table and each transmission walks a
// pre-sorted list in ascending-ID (deterministic) order. Config's
// EagerIndex restores full up-front materialization for callers that
// touch every node anyway. If layouts ever become mutable, both the
// hash and the memo must be rebuilt on any position change — there is
// deliberately no invalidation path today.
type Channel struct {
	sched  *sim.Scheduler
	cfg    Config
	layout *topo.Layout
	pool   *Pool
	// nodes is a dense table indexed by NodeID; nil means not attached.
	nodes []*Transceiver
	// hash resolves in-range queries; nil when EagerIndex precomputed
	// every row.
	hash *topo.SpatialHash
	// neighbors[i] memoizes node i's in-range neighbor IDs (excluding
	// i itself), sorted ascending for deterministic delivery order. nil
	// means not yet computed; computed-but-empty rows hold the
	// noNeighbors sentinel so they are not recomputed.
	neighbors [][]NodeID
	// scratch is the reusable collection buffer for neighbor queries.
	scratch []NodeID
	stats   Stats
	rng     *rand.Rand
}

// noNeighbors marks a memoized empty neighbor row (distinct from nil =
// not yet computed).
var noNeighbors = []NodeID{}

// NewChannel builds a channel over the given layout. Construction is
// O(N): the spatial hash is built immediately, neighbor rows on demand.
func NewChannel(sched *sim.Scheduler, cfg Config, layout *topo.Layout) (*Channel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if layout == nil || layout.Len() == 0 {
		return nil, fmt.Errorf("radio: channel %q needs a non-empty layout", cfg.Name)
	}
	if cfg.Range == 0 {
		cfg.Range = cfg.Profile.Range
	}
	pool := cfg.Pool
	if pool == nil {
		pool = &Pool{}
	}
	ch := &Channel{
		sched:     sched,
		cfg:       cfg,
		layout:    layout,
		pool:      pool,
		nodes:     make([]*Transceiver, layout.Len()),
		neighbors: make([][]NodeID, layout.Len()),
		rng:       sched.Rand(),
	}
	pool.channels = append(pool.channels, ch)
	if cfg.EagerIndex {
		ch.buildNeighborIndex()
	} else {
		ch.hash = topo.NewSpatialHash(layout, ch.cfg.Range)
	}
	return ch, nil
}

// lossProb returns the noise-loss probability of the src->dst link:
// the distance model evaluated on the link length when configured
// (clamped to [0, 1]), the flat LossProb otherwise.
func (c *Channel) lossProb(src, dst NodeID) float64 {
	if c.cfg.LossAt == nil {
		return c.cfg.LossProb
	}
	p := c.cfg.LossAt(topo.Distance(c.layout.Position(int(src)), c.layout.Position(int(dst))))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// buildNeighborIndex materializes the layout's sorted adjacency lists
// (topo.Layout.AdjacencyLists) as NodeID rows — the EagerIndex path.
func (c *Channel) buildNeighborIndex() {
	for i, ids := range c.layout.AdjacencyLists(c.cfg.Range) {
		if len(ids) == 0 {
			c.neighbors[i] = noNeighbors
			continue
		}
		out := c.pool.rows.Alloc(len(ids))
		for k, id := range ids {
			out[k] = NodeID(id)
		}
		c.neighbors[i] = out
	}
}

// neighborsOf returns node id's sorted in-range neighbor row, resolving
// and memoizing it on first use. The row's contents and order are
// identical to the eager index's (spatial-hash queries report the exact
// brute-force set; the sort restores ascending IDs).
func (c *Channel) neighborsOf(id NodeID) []NodeID {
	if row := c.neighbors[id]; row != nil {
		return row
	}
	c.scratch = c.scratch[:0]
	c.hash.EachInRange(int(id), c.cfg.Range, func(j int) {
		c.scratch = append(c.scratch, NodeID(j))
	})
	if len(c.scratch) == 0 {
		c.neighbors[id] = noNeighbors
		return noNeighbors
	}
	slices.Sort(c.scratch)
	row := c.pool.rows.Alloc(len(c.scratch))
	copy(row, c.scratch)
	c.neighbors[id] = row
	return row
}

// Config returns the channel configuration (with resolved range).
func (c *Channel) Config() Config { return c.cfg }

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// Rate returns the channel bit rate.
func (c *Channel) Rate() units.BitRate { return c.cfg.Profile.Rate }

// Airtime returns the on-air duration of size bytes on this channel.
func (c *Channel) Airtime(size units.ByteSize) time.Duration {
	return c.cfg.Profile.Rate.TimeFor(size)
}

// Len returns the number of layout slots on the channel (attached or
// not); valid NodeIDs are [0, Len).
func (c *Channel) Len() int { return len(c.nodes) }

// Lookup returns the transceiver attached under id, if any. IDs outside
// the layout safely report false.
func (c *Channel) Lookup(id NodeID) (*Transceiver, bool) {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil, false
	}
	t := c.nodes[id]
	return t, t != nil
}

// InRange reports whether two attached nodes are within radio range.
func (c *Channel) InRange(a, b NodeID) bool {
	return topo.InRange(c.layout.Position(int(a)), c.layout.Position(int(b)), c.cfg.Range)
}

// Neighbors returns node id's in-range neighbor IDs, sorted ascending
// (attached or not), resolving the row on first use. The slice is
// shared; callers must not mutate it.
func (c *Channel) Neighbors(id NodeID) []NodeID {
	if int(id) < 0 || int(id) >= len(c.neighbors) {
		return nil
	}
	return c.neighborsOf(id)
}

// start transmits f from the transceiver, delivering arrivals to every
// in-range node. Called by Transceiver.Transmit after state checks.
// The memoized neighbor row makes this a single allocation-free walk
// in ascending-ID (deterministic) order after the first transmission
// from a node.
func (c *Channel) start(f Frame) {
	c.stats.Transmissions++
	airtime := c.Airtime(f.Size)
	for _, id := range c.neighborsOf(f.Src) {
		if rx := c.nodes[id]; rx != nil {
			rx.arrive(f, airtime)
		}
	}
}
