package radio

import (
	"fmt"
	"time"

	"bulktx/internal/energy"
	"bulktx/internal/sim"
	"bulktx/internal/topo"
	"bulktx/internal/units"
)

// Config describes one radio technology instantiated as a channel.
type Config struct {
	// Name labels the channel in logs and stats ("sensor", "802.11").
	Name string
	// Profile supplies rate and power draws for all transceivers on the
	// channel.
	Profile energy.Profile
	// Range overrides the profile's transmission range when positive
	// (the paper gives Lucent 11 Mbps the sensor radio's 40 m range).
	Range units.Meters
	// LossProb is an independent corruption probability applied to every
	// frame reception (channel noise, in addition to collisions).
	LossProb float64
	// WakeupLatency is the Off -> usable transition time applied by
	// PowerOn. Zero means instant.
	WakeupLatency time.Duration
	// HeaderSize is the technology's frame header; used to charge
	// header-only overhearing.
	HeaderSize units.ByteSize
}

func (c Config) validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	switch {
	case c.LossProb < 0 || c.LossProb >= 1:
		return fmt.Errorf("radio: loss probability %v outside [0,1)", c.LossProb)
	case c.Range < 0:
		return fmt.Errorf("radio: negative range %v", c.Range)
	case c.WakeupLatency < 0:
		return fmt.Errorf("radio: negative wakeup latency %v", c.WakeupLatency)
	case c.HeaderSize < 0:
		return fmt.Errorf("radio: negative header size %v", c.HeaderSize)
	}
	return nil
}

// Stats aggregates channel-wide counters.
type Stats struct {
	// Transmissions counts frames put on the air.
	Transmissions uint64
	// Deliveries counts clean frame receptions passed up to MACs.
	Deliveries uint64
	// Collisions counts receptions corrupted by overlapping arrivals.
	Collisions uint64
	// NoiseLosses counts receptions dropped by the random loss model.
	NoiseLosses uint64
	// Overhears counts clean receptions at nodes other than the
	// destination.
	Overhears uint64
}

// Channel is a broadcast medium shared by all transceivers of one radio
// technology. Propagation is a disk of the configured range; propagation
// delay is negligible at the paper's 200 m scale and modelled as zero.
type Channel struct {
	sched  *sim.Scheduler
	cfg    Config
	layout *topo.Layout
	nodes  map[NodeID]*Transceiver
	stats  Stats
	rng    interface{ Float64() float64 }
}

// NewChannel builds a channel over the given layout.
func NewChannel(sched *sim.Scheduler, cfg Config, layout *topo.Layout) (*Channel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if layout == nil || layout.Len() == 0 {
		return nil, fmt.Errorf("radio: channel %q needs a non-empty layout", cfg.Name)
	}
	if cfg.Range == 0 {
		cfg.Range = cfg.Profile.Range
	}
	return &Channel{
		sched:  sched,
		cfg:    cfg,
		layout: layout,
		nodes:  make(map[NodeID]*Transceiver, layout.Len()),
		rng:    sched.Rand(),
	}, nil
}

// Config returns the channel configuration (with resolved range).
func (c *Channel) Config() Config { return c.cfg }

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// Rate returns the channel bit rate.
func (c *Channel) Rate() units.BitRate { return c.cfg.Profile.Rate }

// Airtime returns the on-air duration of size bytes on this channel.
func (c *Channel) Airtime(size units.ByteSize) time.Duration {
	return c.cfg.Profile.Rate.TimeFor(size)
}

// Lookup returns the transceiver attached under id, if any.
func (c *Channel) Lookup(id NodeID) (*Transceiver, bool) {
	t, ok := c.nodes[id]
	return t, ok
}

// InRange reports whether two attached nodes are within radio range.
func (c *Channel) InRange(a, b NodeID) bool {
	return topo.InRange(c.layout.Position(int(a)), c.layout.Position(int(b)), c.cfg.Range)
}

// broadcastTo enumerates the attached transceivers in range of src.
func (c *Channel) broadcastTo(src NodeID) []*Transceiver {
	var out []*Transceiver
	for id, t := range c.nodes {
		if id == src {
			continue
		}
		if c.InRange(src, id) {
			out = append(out, t)
		}
	}
	return out
}

// start transmits f from the transceiver, delivering arrivals to every
// in-range node. Called by Transceiver.Transmit after state checks.
func (c *Channel) start(f Frame) {
	c.stats.Transmissions++
	airtime := c.Airtime(f.Size)
	// Deterministic iteration: collect then sort by id.
	receivers := c.broadcastTo(f.Src)
	sortTransceivers(receivers)
	for _, rx := range receivers {
		rx.arrive(f, airtime)
	}
}

func sortTransceivers(ts []*Transceiver) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].id < ts[j-1].id; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
