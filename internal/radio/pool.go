package radio

import "bulktx/internal/mempool"

// Pool recycles the per-run allocations of radio models so repeated
// simulations (parameter sweeps, RunMany replicas) stop churning the
// garbage collector: transceiver structs, memoized neighbor rows, and
// arrival records are all drawn from the pool and reclaimed wholesale
// by Reset between runs.
//
// A pool is single-run-at-a-time: channels built with it (via
// Config.Pool) register themselves, and Reset walks the registered
// channels to harvest still-checked-out arrivals before rewinding the
// allocators. Reset must only be called once the run owning the
// channels is finished and none of its objects (other than energy
// meters, which are always individually heap-allocated) are referenced.
// A nil Config.Pool gives every channel a private pool, which is never
// reset — exactly the old allocation behavior.
//
// Like the rest of the engine a Pool is not safe for concurrent use;
// sweep workers each own one.
type Pool struct {
	xcvrs    mempool.Slab[Transceiver]
	rows     mempool.Arena[NodeID]
	arrivals []*arrival
	channels []*Channel
}

// getArrival hands out a recycled arrival (or mints one with its finish
// closure bound) with a.t set to the checking-out transceiver.
func (p *Pool) getArrival(t *Transceiver) *arrival {
	var a *arrival
	if n := len(p.arrivals); n > 0 {
		a = p.arrivals[n-1]
		p.arrivals = p.arrivals[:n-1]
	} else {
		a = &arrival{}
		a.fin = func() { a.t.finishArrival(a) }
	}
	a.t = t
	return a
}

// putArrival clears an arrival and returns it to the free list.
func (p *Pool) putArrival(a *arrival) {
	a.t = nil
	a.frame = Frame{}
	a.forMe, a.chargeRx, a.corrupt, a.aborted = false, false, false, false
	p.arrivals = append(p.arrivals, a)
}

// Reset reclaims everything handed out since the previous reset:
// in-flight arrivals are harvested from the registered channels'
// transceivers, the channel registry is dropped, and the transceiver
// slab and neighbor-row arena rewind (zeroing recycled memory, so the
// next run starts from the same clean state as a fresh allocation).
// Each harvested channel's pool reference is severed, so accidental
// use of a stale channel after Reset fails loudly (nil dereference)
// instead of silently corrupting the next run's memory.
func (p *Pool) Reset() {
	for _, c := range p.channels {
		for _, t := range c.nodes {
			if t == nil {
				continue
			}
			for _, a := range t.arrivals {
				p.putArrival(a)
			}
		}
		c.pool = nil
	}
	p.channels = p.channels[:0]
	p.xcvrs.Reset()
	p.rows.Reset()
}
