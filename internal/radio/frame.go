// Package radio models the physical layer of both radios: a shared
// broadcast channel with disk propagation, half-duplex transceivers with
// power states and energy metering, collision detection and random frame
// loss.
//
// The sensor radios of all nodes share one Channel and the IEEE 802.11
// radios another; the paper assumes the two operate on non-overlapping
// channels, so the two Channels never interact.
package radio

import (
	"fmt"

	"bulktx/internal/units"
)

// NodeID identifies a node on a channel. IDs index the channel's layout.
type NodeID int

// Broadcast addresses a frame to every node in range.
const Broadcast NodeID = -1

// Kind classifies frames for the MAC and protocol layers.
type Kind int

// Frame kinds.
const (
	// KindData carries application payload.
	KindData Kind = iota + 1
	// KindAck is a link-layer acknowledgement.
	KindAck
	// KindControl carries protocol control payloads (BCP wake-up
	// messages and wake-up acks).
	KindControl
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Frame is a single on-air transmission unit. Src and Dst are per-hop MAC
// addresses; end-to-end addressing lives in the Payload.
type Frame struct {
	// Kind classifies the frame.
	Kind Kind
	// Src is the transmitting node.
	Src NodeID
	// Dst is the destination node or Broadcast.
	Dst NodeID
	// Size is the total on-air size including all headers; it determines
	// airtime and energy.
	Size units.ByteSize
	// Seq is a MAC-level sequence number used for acknowledgement
	// matching and duplicate suppression.
	Seq uint64
	// Payload is the upper-layer content; the radio layer never inspects
	// it.
	Payload any
}

// IsUnicast reports whether the frame has a single destination.
func (f Frame) IsUnicast() bool { return f.Dst != Broadcast }

// String formats the frame for logs.
func (f Frame) String() string {
	return fmt.Sprintf("%s %d->%d seq=%d size=%v", f.Kind, f.Src, f.Dst, f.Seq, f.Size)
}
