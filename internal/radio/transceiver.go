package radio

import (
	"errors"
	"fmt"

	"bulktx/internal/energy"
	"bulktx/internal/sim"
)

// OverhearPolicy selects how a transceiver is charged for receptions not
// addressed to it. The paper's evaluation uses all three: the ideal
// sensor model overhears for free, the "Sensor-header" model pays for
// packet headers, and the 802.11 radios pay in full.
type OverhearPolicy int

// Overhearing policies.
const (
	// OverhearFull keeps the radio in Rx for the whole overheard frame.
	OverhearFull OverhearPolicy = iota + 1
	// OverhearHeaderOnly charges reception of the frame header only.
	OverhearHeaderOnly
	// OverhearFree charges nothing for overheard frames.
	OverhearFree
)

// Errors returned by transceiver operations.
var (
	// ErrRadioOff indicates a transmit attempt while the radio is off or
	// still waking up.
	ErrRadioOff = errors.New("radio: transceiver is off")
	// ErrRadioBusy indicates a transmit attempt while a transmission is
	// already in progress, or a power-off during transmission.
	ErrRadioBusy = errors.New("radio: transceiver is busy transmitting")
	// ErrAlreadyAttached indicates a duplicate Attach for a node ID.
	ErrAlreadyAttached = errors.New("radio: node already attached")
)

// arrival tracks one incoming frame at a receiver. Arrivals are pooled
// at the channel's Pool: each carries a finish closure bound once at
// first allocation (dispatching through the t field, which is set at
// checkout), so steady-state reception neither allocates the struct
// nor a new completion callback, and Pool.Reset recycles arrivals
// across entire runs.
type arrival struct {
	fin      func() // bound once: t.finishArrival(this)
	t        *Transceiver
	frame    Frame
	forMe    bool
	chargeRx bool
	corrupt  bool
	aborted  bool
}

// Transceiver is one node's interface to a Channel: a half-duplex radio
// with power states, energy metering and collision-aware reception.
type Transceiver struct {
	ch    *Channel
	id    NodeID
	meter *energy.Meter

	overhear OverhearPolicy

	on           bool
	waking       bool
	failed       bool
	resumeWake   bool
	transmitting bool
	arrivals     []*arrival
	lastBusyEnd  sim.Time

	// txFrame is the frame currently on the air; finishTxFn completes it.
	// A transceiver is half-duplex with at most one transmission in
	// flight (Transmit returns ErrRadioBusy otherwise), so one slot
	// suffices and the completion closure is bound once at Attach.
	txFrame    Frame
	finishTxFn func()

	wakeTimer sim.Timer
	observer  func(Event)

	onReceive func(Frame)
	onTxDone  func(Frame)
	onWake    func()
}

// Attach creates a transceiver for node id on the channel. Sensor radios
// are attached powered on (startOn=true); high-power radios start off.
// IDs outside the layout are rejected, keeping every later dense-table
// access bounds-safe.
func (c *Channel) Attach(id NodeID, overhear OverhearPolicy, startOn bool) (*Transceiver, error) {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil, fmt.Errorf("radio: node %d outside layout of %d nodes", id, len(c.nodes))
	}
	if c.nodes[id] != nil {
		return nil, fmt.Errorf("%w: node %d on channel %q", ErrAlreadyAttached, id, c.cfg.Name)
	}
	// Transceivers come from the pool's slab (zeroed, stable address);
	// meters stay individually heap-allocated because debug probes hand
	// them out past the run's lifetime.
	t := c.pool.xcvrs.Get()
	t.ch = c
	t.id = id
	t.meter = energy.NewMeter(c.cfg.Profile, c.sched.Now)
	t.overhear = overhear
	t.wakeTimer.Init(c.sched, t.completeWake)
	t.finishTxFn = t.finishTx
	if startOn {
		t.on = true
		t.meter.Transition(energy.Idle)
	}
	c.nodes[id] = t
	return t, nil
}

// ID returns the node ID on the channel.
func (t *Transceiver) ID() NodeID { return t.id }

// Meter exposes the transceiver's energy meter.
func (t *Transceiver) Meter() *energy.Meter { return t.meter }

// Channel returns the channel the transceiver is attached to.
func (t *Transceiver) Channel() *Channel { return t.ch }

// SetOnReceive registers the clean-reception callback (MAC layer).
func (t *Transceiver) SetOnReceive(fn func(Frame)) { t.onReceive = fn }

// SetOnTxDone registers the transmission-complete callback.
func (t *Transceiver) SetOnTxDone(fn func(Frame)) { t.onTxDone = fn }

// SetOnWake registers the callback fired when PowerOn completes.
func (t *Transceiver) SetOnWake(fn func()) { t.onWake = fn }

// On reports whether the radio is powered and usable (not waking up or
// crashed).
func (t *Transceiver) On() bool { return t.on && !t.failed }

// Waking reports whether the radio is mid wake-up transition.
func (t *Transceiver) Waking() bool { return t.waking }

// Failed reports whether the node is currently crashed (see SetFailed).
func (t *Transceiver) Failed() bool { return t.failed }

// SetFailed crashes (down=true) or recovers (down=false) the node — the
// churn model's hook. While failed the transceiver neither hears nor
// transmits, On reports false, PowerOn is a no-op and the meter sits in
// Off. Failing aborts in-progress receptions; an in-flight transmission
// is not recalled (its energy is already on the air at the receivers)
// but the transmitter stops charging for it. Recovery restores the
// pre-failure power state: always-on radios resume listening, radios
// that were off stay off until the protocol powers them up again.
func (t *Transceiver) SetFailed(down bool) {
	if t.failed == down {
		return
	}
	t.failed = down
	if down {
		// A wake-up in flight dies with the crash but is remembered:
		// recovery reboots the radio and restarts the wake, so protocol
		// logic parked on the onWake callback (e.g. a BCP burst waiting
		// for the 802.11 radio) is eventually released instead of
		// deadlocking for the rest of the run.
		t.resumeWake = t.resumeWake || t.waking
		t.wakeTimer.Stop()
		t.waking = false
		for _, a := range t.arrivals {
			a.aborted = true
		}
		t.arrivals = t.arrivals[:0]
		t.noteIdle()
		t.updateMeterState()
		return
	}
	t.noteIdle()
	t.updateMeterState()
	if t.resumeWake {
		t.resumeWake = false
		t.PowerOn()
	}
}

// Busy reports carrier sense: a transmission in progress or energy on the
// channel at this receiver.
func (t *Transceiver) Busy() bool {
	return t.transmitting || len(t.arrivals) > 0
}

// IdleFor returns how long the medium has been continuously idle at this
// transceiver, and false while it is busy. The DCF MAC uses it to enforce
// the DIFS idle requirement that protects SIFS-spaced acknowledgements.
func (t *Transceiver) IdleFor() (sim.Time, bool) {
	if t.Busy() {
		return 0, false
	}
	return t.ch.sched.Now() - t.lastBusyEnd, true
}

// noteIdle records the end of channel activity for IdleFor.
func (t *Transceiver) noteIdle() {
	if !t.Busy() {
		t.lastBusyEnd = t.ch.sched.Now()
	}
}

// PowerOn starts the off->on transition, charging the profile's wake-up
// energy and becoming usable after the channel's wake-up latency. It is a
// no-op when already on or waking.
func (t *Transceiver) PowerOn() {
	if t.failed {
		// The crashed node cannot wake now, but the request survives the
		// outage: the recovery reboot starts the wake-up.
		t.resumeWake = true
		return
	}
	if t.on || t.waking {
		return
	}
	t.meter.Transition(energy.WakingUp)
	t.observe(EventWakeupStart, 0)
	if t.ch.cfg.WakeupLatency == 0 {
		t.completeWake()
		return
	}
	t.waking = true
	t.wakeTimer.Reset(t.ch.cfg.WakeupLatency)
}

func (t *Transceiver) completeWake() {
	t.waking = false
	t.on = true
	t.updateMeterState()
	t.observe(EventPowerOn, 0)
	if t.onWake != nil {
		t.onWake()
	}
}

// PowerOff turns the radio off, aborting any in-progress receptions. It
// returns ErrRadioBusy if a transmission is in flight.
func (t *Transceiver) PowerOff() error {
	if t.transmitting {
		return fmt.Errorf("%w: node %d cannot power off mid-transmission", ErrRadioBusy, t.id)
	}
	wasActive := t.on || t.waking
	t.wakeTimer.Stop()
	t.waking = false
	t.resumeWake = false // an explicit shutdown cancels any pending reboot wake
	t.on = false
	if wasActive {
		t.observe(EventPowerOff, 0)
	}
	for _, a := range t.arrivals {
		a.aborted = true
	}
	t.arrivals = t.arrivals[:0]
	t.noteIdle()
	t.meter.Transition(energy.Off)
	return nil
}

// Transmit puts f on the air. The caller (MAC) is responsible for carrier
// sensing; transmitting while receiving is allowed and corrupts the
// in-progress receptions (half-duplex radio).
func (t *Transceiver) Transmit(f Frame) error {
	if !t.on || t.failed {
		return fmt.Errorf("%w: node %d", ErrRadioOff, t.id)
	}
	if t.transmitting {
		return fmt.Errorf("%w: node %d", ErrRadioBusy, t.id)
	}
	f.Src = t.id
	for _, a := range t.arrivals {
		a.corrupt = true
	}
	t.transmitting = true
	t.txFrame = f
	t.updateMeterState()
	t.observe(EventTxStart, f.Size)
	t.ch.start(f)
	t.ch.sched.After(t.ch.Airtime(f.Size), t.finishTxFn)
	return nil
}

func (t *Transceiver) finishTx() {
	f := t.txFrame
	t.txFrame = Frame{}
	t.transmitting = false
	t.noteIdle()
	t.updateMeterState()
	t.observe(EventTxEnd, f.Size)
	if t.onTxDone != nil {
		t.onTxDone(f)
	}
}

// arrive begins reception of a frame lasting airtime. Called by the
// channel for every in-range transceiver.
func (t *Transceiver) arrive(f Frame, airtime sim.Time) {
	if !t.on || t.failed {
		return // off, waking or crashed radios do not hear anything
	}
	a := t.newArrival()
	a.frame = f
	a.forMe = f.Dst == t.id || f.Dst == Broadcast
	a.chargeRx = a.forMe || t.overhear == OverhearFull
	if t.transmitting {
		a.corrupt = true // half-duplex: own transmission drowns the arrival
	}
	if len(t.arrivals) > 0 {
		a.corrupt = true
		for _, other := range t.arrivals {
			other.corrupt = true
		}
	}
	t.arrivals = append(t.arrivals, a)
	t.updateMeterState()
	if a.chargeRx {
		t.observe(EventRxStart, f.Size)
	}
	t.ch.sched.After(airtime, a.fin)
}

// newArrival checks an arrival out of the channel's pool, bound to
// this transceiver. Arrivals return to the pool in finishArrival, which
// runs exactly once per arrival (aborted ones included), or via
// Pool.Reset for arrivals still in flight at end of run.
func (t *Transceiver) newArrival() *arrival {
	return t.ch.pool.getArrival(t)
}

// freeArrival clears and pools an arrival for reuse.
func (t *Transceiver) freeArrival(a *arrival) {
	t.ch.pool.putArrival(a)
}

func (t *Transceiver) finishArrival(a *arrival) {
	if a.aborted {
		t.freeArrival(a)
		return
	}
	for i, cur := range t.arrivals {
		if cur == a {
			t.arrivals = append(t.arrivals[:i], t.arrivals[i+1:]...)
			break
		}
	}
	t.noteIdle()
	t.updateMeterState()
	if a.chargeRx {
		t.observe(EventRxEnd, a.frame.Size)
	}

	if !a.forMe && t.overhear == OverhearHeaderOnly {
		// Charged whether or not the frame decoded: the radio listened to
		// the header either way. The cost lands in the Overhear ledger so
		// evaluation models can separate it from useful reception.
		headerAirtime := t.ch.Airtime(t.ch.cfg.HeaderSize)
		t.meter.ChargeEnergy(energy.Overhear, t.ch.cfg.Profile.Rx.Over(headerAirtime))
	}
	// Copy the outcome out and recycle the arrival before dispatching:
	// the receive callback may transitively start new receptions at this
	// transceiver, and the freed arrival must be reusable by then.
	frame, corrupt, forMe := a.frame, a.corrupt, a.forMe
	t.freeArrival(a)
	if corrupt {
		t.ch.stats.Collisions++
		return
	}
	if p := t.ch.lossProb(frame.Src, t.id); p > 0 && t.ch.rng.Float64() < p {
		t.ch.stats.NoiseLosses++
		return
	}
	if !forMe {
		t.ch.stats.Overhears++
		return
	}
	t.ch.stats.Deliveries++
	if t.onReceive != nil {
		t.onReceive(frame)
	}
}

// updateMeterState recomputes the meter state from the radio's activity.
func (t *Transceiver) updateMeterState() {
	switch {
	case t.failed:
		t.meter.Transition(energy.Off)
	case !t.on && t.waking:
		t.meter.Transition(energy.WakingUp)
	case !t.on:
		t.meter.Transition(energy.Off)
	case t.transmitting:
		t.meter.Transition(energy.Tx)
	case t.charging():
		t.meter.Transition(energy.Rx)
	default:
		t.meter.Transition(energy.Idle)
	}
}

func (t *Transceiver) charging() bool {
	for _, a := range t.arrivals {
		if a.chargeRx {
			return true
		}
	}
	return false
}
