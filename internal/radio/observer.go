package radio

import (
	"fmt"

	"bulktx/internal/sim"
	"bulktx/internal/units"
)

// EventKind labels transceiver activity events for observers.
type EventKind int

// Transceiver events.
const (
	// EventWakeupStart fires when an off radio begins powering on.
	EventWakeupStart EventKind = iota + 1
	// EventPowerOn fires when the radio becomes usable.
	EventPowerOn
	// EventPowerOff fires when the radio turns off.
	EventPowerOff
	// EventTxStart and EventTxEnd bracket a transmission.
	EventTxStart
	EventTxEnd
	// EventRxStart and EventRxEnd bracket a charged reception.
	EventRxStart
	EventRxEnd
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventWakeupStart:
		return "wakeup-start"
	case EventPowerOn:
		return "power-on"
	case EventPowerOff:
		return "power-off"
	case EventTxStart:
		return "tx-start"
	case EventTxEnd:
		return "tx-end"
	case EventRxStart:
		return "rx-start"
	case EventRxEnd:
		return "rx-end"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observed transceiver activity record. The mote prototype
// harness (paper Section 4.2) reconstructs energy consumption from these
// logs, exactly as the authors post-processed their TinyOS event logs.
type Event struct {
	// Kind is the observed activity.
	Kind EventKind
	// At is the simulated event time.
	At sim.Time
	// Size is the frame size for tx/rx events (zero otherwise).
	Size units.ByteSize
}

// SetObserver registers an activity observer (nil disables).
func (t *Transceiver) SetObserver(fn func(Event)) { t.observer = fn }

func (t *Transceiver) observe(kind EventKind, size units.ByteSize) {
	if t.observer == nil {
		return
	}
	t.observer(Event{Kind: kind, At: t.ch.sched.Now(), Size: size})
}
