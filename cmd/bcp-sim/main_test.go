package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bulktx"
)

func mustParse(t *testing.T, args ...string) options {
	t.Helper()
	o, err := parseFlags(flag.NewFlagSet("test", flag.ContinueOnError), args)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestBuildConfigTopologies(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{}, ""},
		{[]string{"-topology", "grid"}, ""},
		{[]string{"-topology", "uniform", "-field", "150", "-topo-seed", "3"}, "uniform"},
		{[]string{"-topology", "clustered", "-clusters", "4"}, "clustered"},
		{[]string{"-topology", "linear", "-nodes", "24"}, "linear"},
	} {
		cfg, err := buildConfig(mustParse(t, tc.args...))
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if cfg.Topology != tc.want {
			t.Errorf("%v: topology = %q, want %q", tc.args, cfg.Topology, tc.want)
		}
	}
	cfg, err := buildConfig(mustParse(t, "-topology", "linear", "-nodes", "24", "-field", "120"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 24 || cfg.Field != 120 {
		t.Errorf("nodes/field = %d/%v", cfg.Nodes, cfg.Field)
	}
	if _, err := buildConfig(mustParse(t, "-topology", "torus")); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestBuildConfigChurn(t *testing.T) {
	cfg, err := buildConfig(mustParse(t, "-churn", "2.5", "-churn-down", "30s"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ChurnRate != 2.5 || cfg.ChurnMeanDowntime != 30*time.Second {
		t.Errorf("churn = %v/%v", cfg.ChurnRate, cfg.ChurnMeanDowntime)
	}
	if _, err := buildConfig(mustParse(t, "-churn", "-1")); err == nil {
		t.Error("negative churn accepted")
	}
}

func TestBuildConfigErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-case", "xx"},
		{"-model", "quantum"},
		{"-traffic", "fractal"},
		{"-senders", "0"},
	} {
		if _, err := buildConfig(mustParse(t, args...)); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// Every named topology plus churn runs end-to-end through the CLI
// entry point.
func TestRunEndToEndAcrossScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, args := range [][]string{
		{"-duration", "60s", "-runs", "1", "-senders", "5", "-rate", "2"},
		{"-topology", "uniform", "-field", "150", "-topo-seed", "1",
			"-duration", "60s", "-runs", "1", "-senders", "5", "-rate", "2"},
		{"-topology", "clustered", "-duration", "60s", "-runs", "1",
			"-senders", "5", "-rate", "2"},
		{"-topology", "linear", "-duration", "60s", "-runs", "1",
			"-senders", "5", "-rate", "2"},
		{"-churn", "4", "-churn-down", "20s", "-duration", "60s", "-runs", "1",
			"-senders", "5", "-rate", "2"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// The partitioned-deployment diagnostic reaches the CLI user intact.
func TestRunReportsConnectivityError(t *testing.T) {
	err := run([]string{"-topology", "uniform", "-topo-seed", "2",
		"-duration", "30s", "-runs", "1"})
	if err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("err = %v, want connectivity diagnostic", err)
	}
}

func TestMeterAliasCompiles(t *testing.T) {
	var m bulktx.Meters = 200
	if float64(m) != 200 {
		t.Error("Meters alias broken")
	}
}

func TestTraceFlagsImplyTracedRun(t *testing.T) {
	o := mustParse(t, "-trace-jsonl", "x.jsonl")
	if !o.wantTrace() {
		t.Error("-trace-jsonl did not imply a traced run")
	}
	o = mustParse(t, "-trace-sample", "30s")
	if !o.wantTrace() {
		t.Error("-trace-sample did not imply a traced run")
	}
	if mustParse(t).wantTrace() {
		t.Error("default flags request a traced run")
	}
}

func TestRunEndToEndTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "trace.jsonl")
	events := filepath.Join(dir, "events.csv")
	energy := filepath.Join(dir, "energy.csv")
	err := run([]string{
		"-duration", "60s", "-runs", "1", "-senders", "5", "-rate", "2",
		"-trace", "-trace-sample", "20s",
		"-trace-jsonl", jsonl, "-trace-events-csv", events, "-trace-energy-csv", energy,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonl, events, energy} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("export missing: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("export %s is empty", path)
		}
	}
}
