// Command bcp-sim runs one network simulation of the paper's Section 4.1
// evaluation and reports goodput, normalized energy and delay.
//
// Usage:
//
//	bcp-sim -model dual -case sh -senders 15 -burst 500
//	bcp-sim -model sensor -case mh -senders 35 -duration 5000s -runs 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bcp-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model    = flag.String("model", "dual", "evaluation model: sensor|wifi|dual")
		scenario = flag.String("case", "sh", "radio case: sh (Lucent 11 Mbps) | mh (Cabletron one hop)")
		senders  = flag.Int("senders", 15, "number of CBR senders (1-35)")
		burst    = flag.Int("burst", 500, "alpha-s* threshold in sensor packets")
		rate     = flag.Float64("rate", 0, "per-sender rate in Kbps (0: case default)")
		duration = flag.Duration("duration", 600*time.Second, "simulated duration")
		runs     = flag.Int("runs", 3, "seeded repetitions")
		seed     = flag.Int64("seed", 1, "base seed")
		loss     = flag.Float64("loss", 0, "sensor-channel loss probability")
		shortcut = flag.Bool("shortcut", false, "use shortcut-learning wifi routes (dual model)")
		traffic  = flag.String("traffic", "cbr", "arrival process: cbr|poisson|onoff")
		bound    = flag.Duration("bound", 0, "delay bound (0: off); overdue data uses the sensor radio")
		adaptive = flag.Float64("adaptive", 0, "adaptive threshold alpha (0: static threshold)")
	)
	flag.Parse()

	var cfg bulktx.SimConfig
	switch *scenario {
	case "sh":
		cfg = bulktx.NewSimConfig(bulktx.ModelDual, *senders, *burst, *seed)
	case "mh":
		cfg = bulktx.NewMultiHopSimConfig(*senders, *burst, *seed)
	default:
		return fmt.Errorf("unknown case %q (want sh or mh)", *scenario)
	}
	switch *model {
	case "sensor":
		cfg.Model = bulktx.ModelSensor
	case "wifi":
		cfg.Model = bulktx.ModelWifi
	case "dual":
		cfg.Model = bulktx.ModelDual
	default:
		return fmt.Errorf("unknown model %q (want sensor, wifi or dual)", *model)
	}
	cfg.Duration = *duration
	cfg.SensorLoss = *loss
	cfg.UseShortcutLearner = *shortcut
	cfg.DelayBound = *bound
	cfg.AdaptiveThresholdAlpha = *adaptive
	switch *traffic {
	case "cbr":
		cfg.Traffic = bulktx.TrafficCBR
	case "poisson":
		cfg.Traffic = bulktx.TrafficPoisson
	case "onoff":
		cfg.Traffic = bulktx.TrafficOnOff
	default:
		return fmt.Errorf("unknown traffic %q (want cbr, poisson or onoff)", *traffic)
	}
	if *rate > 0 {
		cfg.Rate = bulktx.BitRate(*rate) * bulktx.Kbps
	}

	results, err := bulktx.RunSimulations(cfg, *runs, *seed)
	if err != nil {
		return err
	}
	goodput, normE, idealE, delay := netsim.Summaries(results)
	last := results[len(results)-1]

	fmt.Printf("model=%s case=%s senders=%d burst=%d rate=%v duration=%v runs=%d\n",
		cfg.Model, *scenario, *senders, *burst, cfg.Rate, *duration, *runs)
	fmt.Printf("  goodput            %s\n", goodput)
	fmt.Printf("  energy (J/Kbit)    %s\n", normE)
	if cfg.Model == bulktx.ModelSensor {
		fmt.Printf("  ideal   (J/Kbit)   %s\n", idealE)
	}
	fmt.Printf("  mean delay         %v\n", delay.Round(time.Millisecond))
	fmt.Printf("  events/run (last)  %d\n", last.Events)
	if cfg.Model == bulktx.ModelDual {
		a := last.AgentStats
		fmt.Printf("  handshakes=%d bursts=%d frames=%d lost=%d denied=%d reduced=%d timeouts=%d\n",
			a.Handshakes, a.BurstsSent, a.FramesSent, a.FramesLost,
			a.GrantsDenied, a.GrantsReduced, a.ReceiverTimeouts)
	}
	return nil
}
