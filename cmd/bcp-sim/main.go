// Command bcp-sim runs one network simulation of the paper's Section 4.1
// evaluation and reports goodput, normalized energy and delay.
//
// Usage:
//
//	bcp-sim -model dual -case sh -senders 15 -burst 500
//	bcp-sim -model sensor -case mh -senders 35 -duration 5000s -runs 20
//	bcp-sim -topology linear -nodes 24 -field 180 -senders 8
//	bcp-sim -topology uniform -nodes 36 -field 150 -topo-seed 3
//	bcp-sim -topology clustered -clusters 4 -churn 2 -churn-down 30s
//
// Topologies beyond the paper's grid ("uniform", "clustered", "linear")
// and the churn model come from the Scenario API; the flags compile to
// the same netsim.Config compatibility layer the sweep engine uses.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/cli"
	"bulktx/internal/netsim"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-sim", run(os.Args[1:]))
}

// options carries the parsed command line.
type options struct {
	model     string
	scenario  string
	senders   int
	burst     int
	rate      float64
	duration  time.Duration
	runs      int
	seed      int64
	loss      float64
	shortcut  bool
	traffic   string
	bound     time.Duration
	adaptive  float64
	topology  string
	nodes     int
	field     float64
	topoSeed  int64
	clusters  int
	churn     float64
	churnDown time.Duration

	trace          bool
	sample         time.Duration
	traceJSONL     string
	traceEventsCSV string
	traceEnergyCSV string

	tel *telemetry.Flags
}

// wantTrace reports whether any flag requests a traced run.
func (o options) wantTrace() bool {
	return o.trace || o.sample > 0 ||
		o.traceJSONL != "" || o.traceEventsCSV != "" || o.traceEnergyCSV != ""
}

func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	var o options
	fs.StringVar(&o.model, "model", "dual", "evaluation model: sensor|wifi|dual")
	fs.StringVar(&o.scenario, "case", "sh", "radio case: sh (Lucent 11 Mbps) | mh (Cabletron one hop)")
	fs.IntVar(&o.senders, "senders", 15, "number of CBR senders (1-35)")
	fs.IntVar(&o.burst, "burst", 500, "alpha-s* threshold in sensor packets")
	fs.Float64Var(&o.rate, "rate", 0, "per-sender rate in Kbps (0: case default)")
	fs.DurationVar(&o.duration, "duration", 600*time.Second, "simulated duration")
	fs.IntVar(&o.runs, "runs", 3, "seeded repetitions")
	fs.Int64Var(&o.seed, "seed", 1, "base seed")
	fs.Float64Var(&o.loss, "loss", 0, "sensor-channel loss probability")
	fs.BoolVar(&o.shortcut, "shortcut", false, "use shortcut-learning wifi routes (dual model)")
	fs.StringVar(&o.traffic, "traffic", "cbr", "arrival process: cbr|poisson|onoff")
	fs.DurationVar(&o.bound, "bound", 0, "delay bound (0: off); overdue data uses the sensor radio")
	fs.Float64Var(&o.adaptive, "adaptive", 0, "adaptive threshold alpha (0: static threshold)")
	fs.StringVar(&o.topology, "topology", "grid", "node layout: grid|uniform|clustered|linear")
	fs.IntVar(&o.nodes, "nodes", 0, "deployment size (0: the paper's 36)")
	fs.Float64Var(&o.field, "field", 0, "field edge / corridor length in meters (0: the paper's 200)")
	fs.Int64Var(&o.topoSeed, "topo-seed", 0, "placement seed for random topologies (0: fixed default placement)")
	fs.IntVar(&o.clusters, "clusters", 0, "hotspot count for -topology clustered (0: default 4)")
	fs.Float64Var(&o.churn, "churn", 0, "node churn rate in failures per node-hour (0: off)")
	fs.DurationVar(&o.churnDown, "churn-down", 0, "mean outage length under churn (0: default 60s)")
	fs.BoolVar(&o.trace, "trace", false, "run one traced repetition at the base seed and print the per-node energy breakdown")
	fs.DurationVar(&o.sample, "trace-sample", 0, "also record periodic energy samples at this simulated interval (implies -trace)")
	fs.StringVar(&o.traceJSONL, "trace-jsonl", "", "export the traced run as JSON lines (implies -trace)")
	fs.StringVar(&o.traceEventsCSV, "trace-events-csv", "", "export the traced run's events as CSV (implies -trace)")
	fs.StringVar(&o.traceEnergyCSV, "trace-energy-csv", "", "export the traced run's per-node energy breakdown as CSV (implies -trace)")
	o.tel = telemetry.RegisterFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return options{}, err
	}
	return o, nil
}

// buildConfig compiles the command line into a simulation config.
func buildConfig(o options) (bulktx.SimConfig, error) {
	var cfg bulktx.SimConfig
	switch o.scenario {
	case "sh":
		cfg = bulktx.NewSimConfig(bulktx.ModelDual, o.senders, o.burst, o.seed)
	case "mh":
		cfg = bulktx.NewMultiHopSimConfig(o.senders, o.burst, o.seed)
	default:
		return cfg, cli.Usagef("unknown case %q (want sh or mh)", o.scenario)
	}
	switch o.model {
	case "sensor":
		cfg.Model = bulktx.ModelSensor
	case "wifi":
		cfg.Model = bulktx.ModelWifi
	case "dual":
		cfg.Model = bulktx.ModelDual
	default:
		return cfg, cli.Usagef("unknown model %q (want sensor, wifi or dual)", o.model)
	}
	cfg.Duration = o.duration
	cfg.SensorLoss = o.loss
	cfg.UseShortcutLearner = o.shortcut
	cfg.DelayBound = o.bound
	cfg.AdaptiveThresholdAlpha = o.adaptive
	switch o.traffic {
	case "cbr":
		cfg.Traffic = bulktx.TrafficCBR
	case "poisson":
		cfg.Traffic = bulktx.TrafficPoisson
	case "onoff":
		cfg.Traffic = bulktx.TrafficOnOff
	default:
		return cfg, cli.Usagef("unknown traffic %q (want cbr, poisson or onoff)", o.traffic)
	}
	if o.rate > 0 {
		cfg.Rate = bulktx.BitRate(o.rate) * bulktx.Kbps
	}

	switch o.topology {
	case "", "grid":
		cfg.Topology = ""
	case "uniform", "clustered", "linear":
		cfg.Topology = o.topology
	default:
		return cfg, cli.Usagef("unknown topology %q (want grid, uniform, clustered or linear)",
			o.topology)
	}
	if o.nodes > 0 {
		cfg.Nodes = o.nodes
	}
	if o.field > 0 {
		cfg.Field = bulktx.Meters(o.field)
	}
	cfg.TopologySeed = o.topoSeed
	cfg.Clusters = o.clusters
	cfg.ChurnRate = o.churn
	cfg.ChurnMeanDowntime = o.churnDown
	if err := cfg.Validate(); err != nil {
		// Every Config field came from a flag, so a validation failure
		// is a usage problem (and exits 2 like any other bad value).
		return cfg, cli.Usage(err)
	}
	return cfg, nil
}

func run(args []string) error {
	o, err := parseFlags(flag.NewFlagSet("bcp-sim", flag.ContinueOnError), args)
	if err != nil {
		return err
	}
	if o.tel.HandleVersion(os.Stdout, "bcp-sim") {
		return nil
	}
	cfg, err := buildConfig(o)
	if err != nil {
		return err
	}

	results, err := bulktx.RunSimulations(cfg, o.runs, o.seed)
	if err != nil {
		return err
	}
	goodput, normE, idealE, delay := netsim.Summaries(results)
	last := results[len(results)-1]

	topoLabel := cfg.Topology
	if topoLabel == "" {
		topoLabel = "grid"
	}
	fmt.Printf("model=%s case=%s topology=%s senders=%d burst=%d rate=%v duration=%v runs=%d",
		cfg.Model, o.scenario, topoLabel, o.senders, o.burst, cfg.Rate, o.duration, o.runs)
	if cfg.ChurnRate > 0 {
		fmt.Printf(" churn=%g/node-h", cfg.ChurnRate)
	}
	fmt.Println()
	fmt.Printf("  goodput            %s\n", goodput)
	fmt.Printf("  energy (J/Kbit)    %s\n", normE)
	if cfg.Model == bulktx.ModelSensor {
		fmt.Printf("  ideal   (J/Kbit)   %s\n", idealE)
	}
	fmt.Printf("  mean delay         %v\n", delay.Round(time.Millisecond))
	fmt.Printf("  events/run (last)  %d\n", last.Events)
	if cfg.Model == bulktx.ModelDual {
		a := last.AgentStats
		fmt.Printf("  handshakes=%d bursts=%d frames=%d lost=%d denied=%d reduced=%d timeouts=%d\n",
			a.Handshakes, a.BurstsSent, a.FramesSent, a.FramesLost,
			a.GrantsDenied, a.GrantsReduced, a.ReceiverTimeouts)
	}
	if o.wantTrace() {
		return runTraced(o, cfg)
	}
	return nil
}

// runTraced executes one extra repetition at the base seed with the
// trace probe attached, prints the per-node breakdown and writes the
// requested exports. The summary runs above stay untraced, so their
// results remain comparable with (and cache-compatible with) every
// other invocation.
func runTraced(o options, cfg bulktx.SimConfig) error {
	topts := bulktx.TraceOptionsFor(o.traceJSONL, o.traceEventsCSV, o.sample)
	s, err := cfg.Scenario(bulktx.WithTrace(topts))
	if err != nil {
		return err
	}
	res, err := bulktx.RunScenario(s)
	if err != nil {
		return err
	}
	fmt.Printf("\ntraced run (seed %d):\n", cfg.Seed)
	fmt.Print(bulktx.EnergyBreakdownTable(res.PerNode))
	fmt.Printf("# breakdown sum %v vs run total %v\n",
		bulktx.TotalPerNode(res.PerNode), res.TotalEnergy)
	if res.Trace != nil && len(res.Trace.Samples) > 0 {
		fmt.Printf("# %d energy samples at %v intervals (export with -trace-jsonl)\n",
			len(res.Trace.Samples), o.sample)
	}

	runs := []bulktx.TracedRun{{
		Label:  fmt.Sprintf("%s-seed%d", cfg.Model, cfg.Seed),
		Result: res,
	}}
	return bulktx.ExportTraceFiles(runs, o.traceJSONL, o.traceEventsCSV, o.traceEnergyCSV)
}
