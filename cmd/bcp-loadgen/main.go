// Command bcp-loadgen drives a live bcp-serve with a seed-deterministic
// mix of client behaviors — single runs, overlapping sweep grids (the
// dedupe layers), late and rude SSE subscribers, mid-sweep
// cancellations, and a 429 storm against the bounded queue that honors
// the advertised Retry-After — and writes the measured outcome as
// BENCH_SERVE.json: per-route p50/p95/p99 latency, cells/sec, dedupe
// hit-rate, SSE replay correctness, and error/429 counts.
//
// Usage:
//
//	bcp-serve -queue 4 -job-workers 2 -workers 2 &
//	bcp-loadgen -base http://127.0.0.1:8080 -seed 1 -o BENCH_SERVE.json
//	bcp-loadgen -base http://127.0.0.1:8080 -seed 1 -compare BENCH_SERVE.json
//
// The schedule is a pure function of (-seed, -profile): two
// invocations with the same seed issue the identical request sequence
// (print it with -print-schedule), and the report's deterministic
// counters — requests, dedupe hits, 429 rejections — match across
// runs even against the same still-running server. -compare gates a
// fresh run against a committed baseline: counters must match exactly,
// the run must be behaviorally clean, and throughput may not regress
// beyond -max-regress (sharing cmd/bcp-bench's gate implementation).
//
// The storm phase requires the target server's -queue and -job-workers
// to match the profile (override with -queue/-job-workers here); see
// docs/OPERATIONS.md for capacity-planning guidance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulktx/internal/bench"
	"bulktx/internal/cli"
	"bulktx/internal/loadgen"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-loadgen", run(os.Args[1:]))
}

// run parses the command line and executes one loadgen invocation.
func run(args []string) error {
	fs := flag.NewFlagSet("bcp-loadgen", flag.ContinueOnError)
	base := fs.String("base", "http://127.0.0.1:8080", "target bcp-serve base URL")
	seed := fs.Int64("seed", 1, "schedule seed; equal seeds issue identical request sequences")
	profileName := fs.String("profile", "short", "load profile: short|soak")
	queue := fs.Int("queue", 0, "override the profile's queue_limit (must match the server's -queue)")
	jobWorkers := fs.Int("job-workers", 0, "override the profile's job_workers (must match the server's -job-workers)")
	out := fs.String("o", "BENCH_SERVE.json", "output JSON path")
	compare := fs.String("compare", "", "baseline JSON: gate this run against it instead of writing a report")
	maxRegress := fs.Float64("max-regress", 0.5, "allowed fractional throughput regression under -compare")
	waitTimeout := fs.Duration("wait-timeout", 2*time.Minute, "per-SSE-wait timeout (a hit means the server shape mismatches the profile)")
	printSchedule := fs.Bool("print-schedule", false, "print the materialized op schedule as JSON and exit without sending requests")
	tel := telemetry.RegisterFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if tel.HandleVersion(os.Stdout, "bcp-loadgen") {
		return nil
	}

	profile, err := loadgen.ProfileByName(*profileName)
	if err != nil {
		return cli.Usage(err)
	}
	if *queue > 0 {
		profile.QueueLimit = *queue
	}
	if *jobWorkers > 0 {
		profile.JobWorkers = *jobWorkers
	}
	if err := profile.Validate(); err != nil {
		return cli.Usage(err)
	}

	// Resolve the gate inputs before the (slow) run so a bad threshold
	// or missing baseline fails in milliseconds, not minutes.
	var baseline *loadgen.Report
	if *compare != "" {
		if err := bench.ValidateMaxRegress(*maxRegress); err != nil {
			return cli.Usage(err)
		}
		baseline = &loadgen.Report{}
		if err := bench.LoadBaseline(*compare, baseline); err != nil {
			return err
		}
	}

	if *printSchedule {
		ops, err := loadgen.BuildSchedule(*seed, profile)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ops); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%d ops, schedule sha256 %s\n", len(ops), loadgen.ScheduleSHA256(ops))
		return nil
	}

	log, err := tel.Logger(os.Stderr)
	if err != nil {
		return cli.Usage(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:     *base,
		Seed:        *seed,
		Profile:     profile,
		Log:         log,
		WaitTimeout: *waitTimeout,
	})
	if err != nil {
		return err
	}
	log.Info("run complete",
		"wall_clock_s", fmt.Sprintf("%.1f", time.Since(start).Seconds()),
		"requests", rep.Counters.Requests,
		"dedupe_hits", rep.Counters.DedupeHits,
		"rejected_429", rep.Counters.Rejected429,
		"unexpected_errors", rep.Counters.UnexpectedErrors)

	if baseline != nil {
		if err := loadgen.CompareReports(os.Stdout, baseline, rep, *maxRegress); err != nil {
			return err
		}
		fmt.Println("loadgen regression gate passed")
		return nil
	}

	if err := rep.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d requests, %d ops)\n", *out, rep.Counters.Requests, rep.ScheduleOps)
	return nil
}
