// Command bcp-bench measures the repository's core performance
// benchmarks with testing.Benchmark and writes the results as JSON, so
// the performance trajectory of the event core is tracked in-tree from
// PR to PR (BENCH_PR2.json is the first committed baseline).
//
// Usage:
//
//	bcp-bench [-o BENCH_PR2.json] [-benchtime 1s]
//
// The emitted JSON carries ns/op, B/op, allocs/op and any custom
// benchmark metrics (events/s for the simulation throughput benchmark)
// plus enough environment metadata to compare runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"bulktx/internal/bench"
)

// report is the serialized form of one bcp-bench run.
type report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	testing.Init() // register test.* flags so benchtime is settable
	out := flag.String("o", "BENCH_PR2.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measurement time")
	flag.Parse()

	// testing.Benchmark reads the package-level benchtime flag.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: set benchtime: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime.String(),
	}
	for _, b := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"ScheduleRun", bench.ScheduleRun},
		{"ScheduleCancel", bench.ScheduleCancel},
		{"TimerReset", bench.TimerReset},
		{"SimulationThroughput", bench.SimulationThroughput},
	} {
		fmt.Fprintf(os.Stderr, "running %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		line := benchLine{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			line.Extra = r.Extra
		}
		rep.Benchmarks = append(rep.Benchmarks, line)
		fmt.Fprintf(os.Stderr, "  %s\t%s\n", b.name, r.String())
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
