// Command bcp-bench measures the repository's core performance
// benchmarks with testing.Benchmark and writes the results as JSON, so
// the performance trajectory of the event core is tracked in-tree from
// PR to PR (BENCH_PR2.json is the first committed baseline).
//
// Usage:
//
//	bcp-bench [-o BENCH_PR2.json] [-benchtime 1s]
//
// The emitted JSON carries ns/op, B/op, allocs/op and any custom
// benchmark metrics (events/s for the simulation throughput benchmark)
// plus enough environment metadata to compare runs.
//
// With -compare, bcp-bench instead runs only the simulation-throughput
// benchmark, compares its events/s against the named baseline file and
// exits non-zero when throughput regressed by more than -max-regress
// (default 25%) — the CI guard against performance rot:
//
//	bcp-bench -compare BENCH_PR2.json -benchtime 1s
//
// The -cpuprofile/-memprofile flags capture pprof profiles of the
// measured benchmarks, for digging into where a regression flagged by
// the gate actually comes from:
//
//	bcp-bench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"bulktx/internal/bench"
	"bulktx/internal/cli"
	"bulktx/internal/telemetry"
)

// report is the serialized form of one bcp-bench run.
type report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	testing.Init() // register test.* flags so benchtime is settable
	out := flag.String("o", "BENCH_PR2.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measurement time")
	compare := flag.String("compare", "", "baseline JSON: compare throughput instead of writing a report")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional events/s regression under -compare")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the benchmarks to this file")
	memProf := flag.String("memprofile", "", "write a heap profile after the benchmarks to this file")
	tel := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-bench") {
		return
	}

	// testing.Benchmark reads the package-level benchtime flag.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: set benchtime: %v\n", err)
		os.Exit(1)
	}

	stopCPU := func() error { return nil }
	if *cpuProf != "" {
		var err error
		if stopCPU, err = telemetry.StartCPUProfile(*cpuProf); err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
	}
	// finishProfiles flushes both profiles once the measured work is
	// done; every exit path below that ran benchmarks goes through it.
	finishProfiles := func() {
		if err := stopCPU(); err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
		if *memProf != "" {
			if err := telemetry.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *compare != "" {
		err := compareThroughput(*compare, *maxRegress)
		finishProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime.String(),
	}
	for _, b := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"ScheduleRun", bench.ScheduleRun},
		{"ScheduleCancel", bench.ScheduleCancel},
		{"TimerReset", bench.TimerReset},
		{"SimulationThroughput", bench.SimulationThroughput},
	} {
		fmt.Fprintf(os.Stderr, "running %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		line := benchLine{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			line.Extra = r.Extra
		}
		rep.Benchmarks = append(rep.Benchmarks, line)
		fmt.Fprintf(os.Stderr, "  %s\t%s\n", b.name, r.String())
	}
	finishProfiles()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// compareThroughput measures SimulationThroughput and fails when its
// events/s fall more than maxRegress below the committed baseline,
// through the shared bench.Compare gate (cmd/bcp-loadgen gates its
// service-level baseline through the same implementation). Events/s is
// machine-dependent like any wall-clock metric, so the gate is only as
// sound as the baseline's provenance: regenerate the baseline
// (bcp-bench -o) on the same runner class that enforces the gate, and
// widen -max-regress rather than deleting the gate when runner
// hardware is heterogeneous.
func compareThroughput(baselinePath string, maxRegress float64) error {
	if err := bench.ValidateMaxRegress(maxRegress); err != nil {
		return cli.Usage(err)
	}
	var baseline report
	if err := bench.LoadBaseline(baselinePath, &baseline); err != nil {
		return err
	}
	var want float64
	for _, b := range baseline.Benchmarks {
		if b.Name == "SimulationThroughput" {
			want = b.Extra["events/s"]
		}
	}
	if want <= 0 {
		return fmt.Errorf("%s has no SimulationThroughput events/s metric", baselinePath)
	}
	fmt.Fprintln(os.Stderr, "running SimulationThroughput...")
	r := testing.Benchmark(bench.SimulationThroughput)
	return bench.Compare(os.Stdout, []bench.Metric{{
		Name:           "SimulationThroughput events/s",
		Baseline:       want,
		Current:        r.Extra["events/s"],
		HigherIsBetter: true,
	}}, maxRegress)
}
