// Command bcp-bench measures the repository's core performance
// benchmarks with testing.Benchmark and writes the results as JSON, so
// the performance trajectory of the event core is tracked in-tree from
// PR to PR (BENCH_PR2.json is the first committed baseline).
//
// Usage:
//
//	bcp-bench [-o BENCH_PR2.json] [-benchtime 1s]
//
// The emitted JSON carries ns/op, B/op, allocs/op and any custom
// benchmark metrics (events/s for the simulation throughput benchmark)
// plus enough environment metadata to compare runs.
//
// With -compare, bcp-bench instead runs only the simulation-throughput
// benchmark, compares its events/s against the named baseline file and
// exits non-zero when throughput regressed by more than -max-regress
// (default 25%) — the CI guard against performance rot:
//
//	bcp-bench -compare BENCH_PR2.json -benchtime 1s
//
// With -scaling, bcp-bench instead sweeps the big-topology scaling
// scenario over -scaling-n node counts (default 1k/5k/10k/50k/100k)
// and writes the curve — build time, events, events/s and bytes/node
// per N — as a scaling report (BENCH_PR6.json is the committed
// baseline). -scaling-compare measures the same sweep and gates it
// against a committed curve: event counts must match exactly
// (they are deterministic), events/s within -max-regress:
//
//	bcp-bench -scaling -o BENCH_PR6.json
//	bcp-bench -scaling-compare BENCH_PR6.json -scaling-n 1000,5000
//
// The -cpuprofile/-memprofile flags capture pprof profiles of the
// measured benchmarks, for digging into where a regression flagged by
// the gate actually comes from:
//
//	bcp-bench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"bulktx/internal/bench"
	"bulktx/internal/cli"
	"bulktx/internal/telemetry"
)

// report is the serialized form of one bcp-bench run.
type report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// scalingReport is the serialized form of one -scaling sweep.
type scalingReport struct {
	GoVersion string               `json:"go_version"`
	GOOS      string               `json:"goos"`
	GOARCH    string               `json:"goarch"`
	NumCPU    int                  `json:"num_cpu"`
	SimSecs   float64              `json:"sim_duration_s"`
	Points    []bench.ScalingPoint `json:"points"`
}

func main() {
	testing.Init() // register test.* flags so benchtime is settable
	out := flag.String("o", "BENCH_PR2.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measurement time")
	compare := flag.String("compare", "", "baseline JSON: compare throughput instead of writing a report")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional events/s regression under -compare and -scaling-compare")
	scaling := flag.Bool("scaling", false, "sweep the big-topology scaling scenario and write a scaling report instead of the core benchmarks")
	scalingN := flag.String("scaling-n", "", "comma-separated node counts for the scaling sweep (default 1000,5000,10000,50000,100000)")
	scalingCompare := flag.String("scaling-compare", "", "baseline scaling JSON: measure the sweep and gate it instead of writing a report")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the benchmarks to this file")
	memProf := flag.String("memprofile", "", "write a heap profile after the benchmarks to this file")
	tel := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-bench") {
		return
	}

	// testing.Benchmark reads the package-level benchtime flag.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: set benchtime: %v\n", err)
		os.Exit(1)
	}

	stopCPU := func() error { return nil }
	if *cpuProf != "" {
		var err error
		if stopCPU, err = telemetry.StartCPUProfile(*cpuProf); err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
	}
	// finishProfiles flushes both profiles once the measured work is
	// done; every exit path below that ran benchmarks goes through it.
	finishProfiles := func() {
		if err := stopCPU(); err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
		if *memProf != "" {
			if err := telemetry.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *compare != "" {
		err := compareThroughput(*compare, *maxRegress)
		finishProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scalingCompare != "" {
		err := compareScalingSweep(*scalingCompare, *scalingN, *maxRegress)
		finishProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scaling {
		// The scaling curve is a different schema from the core report;
		// default it to its own baseline file unless -o was given.
		path := *out
		if !flagWasSet("o") {
			path = "BENCH_PR6.json"
		}
		err := writeScalingReport(path, *scalingN)
		finishProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime.String(),
	}
	for _, b := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"ScheduleRun", bench.ScheduleRun},
		{"ScheduleCancel", bench.ScheduleCancel},
		{"TimerReset", bench.TimerReset},
		{"SimulationThroughput", bench.SimulationThroughput},
	} {
		fmt.Fprintf(os.Stderr, "running %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		line := benchLine{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			line.Extra = r.Extra
		}
		rep.Benchmarks = append(rep.Benchmarks, line)
		fmt.Fprintf(os.Stderr, "  %s\t%s\n", b.name, r.String())
	}
	finishProfiles()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bcp-bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// compareThroughput measures SimulationThroughput and fails when its
// events/s fall more than maxRegress below the committed baseline,
// through the shared bench.Compare gate (cmd/bcp-loadgen gates its
// service-level baseline through the same implementation). Events/s is
// machine-dependent like any wall-clock metric, so the gate is only as
// sound as the baseline's provenance: regenerate the baseline
// (bcp-bench -o) on the same runner class that enforces the gate, and
// widen -max-regress rather than deleting the gate when runner
// hardware is heterogeneous.
func compareThroughput(baselinePath string, maxRegress float64) error {
	if err := bench.ValidateMaxRegress(maxRegress); err != nil {
		return cli.Usage(err)
	}
	var baseline report
	if err := bench.LoadBaseline(baselinePath, &baseline); err != nil {
		return err
	}
	var want float64
	for _, b := range baseline.Benchmarks {
		if b.Name == "SimulationThroughput" {
			want = b.Extra["events/s"]
		}
	}
	if want <= 0 {
		return fmt.Errorf("%s has no SimulationThroughput events/s metric", baselinePath)
	}
	fmt.Fprintln(os.Stderr, "running SimulationThroughput...")
	r := testing.Benchmark(bench.SimulationThroughput)
	return bench.Compare(os.Stdout, []bench.Metric{{
		Name:           "SimulationThroughput events/s",
		Baseline:       want,
		Current:        r.Extra["events/s"],
		HigherIsBetter: true,
	}}, maxRegress)
}

// flagWasSet reports whether the named flag appeared on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseScalingNodes turns the -scaling-n value into node counts,
// defaulting to the canonical sweep when empty.
func parseScalingNodes(spec string) ([]int, error) {
	if spec == "" {
		return bench.ScalingNodes, nil
	}
	parts := strings.Split(spec, ",")
	nodes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, cli.Usage(fmt.Errorf("bad -scaling-n entry %q (want integers >= 2)", p))
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// writeScalingReport sweeps the scaling scenario and writes the curve
// as JSON to path.
func writeScalingReport(path, spec string) error {
	nodes, err := parseScalingNodes(spec)
	if err != nil {
		return err
	}
	points, err := bench.ScalingCurve(os.Stderr, nodes, bench.ScalingDuration)
	if err != nil {
		return err
	}
	rep := scalingReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		SimSecs:   bench.ScalingDuration.Seconds(),
		Points:    points,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s (%d scaling points)\n", path, len(points))
	return nil
}

// compareScalingSweep measures the scaling sweep (restricted to the
// -scaling-n subset if given) and gates it against the committed
// baseline curve: exact event-count equality per N, events/s within
// maxRegress. The baseline's extra points are ignored, so CI can gate
// a reduced sweep against the full committed BENCH_PR6.json.
func compareScalingSweep(baselinePath, spec string, maxRegress float64) error {
	if err := bench.ValidateMaxRegress(maxRegress); err != nil {
		return cli.Usage(err)
	}
	nodes, err := parseScalingNodes(spec)
	if err != nil {
		return err
	}
	var baseline scalingReport
	if err := bench.LoadBaseline(baselinePath, &baseline); err != nil {
		return err
	}
	if baseline.SimSecs != bench.ScalingDuration.Seconds() {
		return fmt.Errorf("%s was captured at %gs simulated, current sweep uses %gs (regenerate the baseline)",
			baselinePath, baseline.SimSecs, bench.ScalingDuration.Seconds())
	}
	current, err := bench.ScalingCurve(os.Stderr, nodes, bench.ScalingDuration)
	if err != nil {
		return err
	}
	return bench.CompareScaling(os.Stdout, baseline.Points, current, maxRegress)
}
