// Command bcp-sweep runs declarative grids of seeded simulations on
// the parallel sweep engine and exports the summarized results.
//
// Usage:
//
//	bcp-sweep -senders 5,15,25 -bursts 10,100,500            # table to stdout
//	bcp-sweep -models dual,sensor,802.11 -runs 5 -format csv
//	bcp-sweep -case multi-hop -duration 600s -format json -o mh.json
//	bcp-sweep -spec sweep.json -cache-dir ~/.cache/bulktx-sweep
//	bcp-sweep -cpuprofile cpu.pprof -memprofile mem.pprof
//
// A spec file (-spec) is a JSON document in the sweep.SpecDoc shape;
// flags for axes are ignored when -spec is given. The cache directory
// is purely a memoization of (config -> result): deleting it is always
// safe. Entries are keyed by the full run configuration plus a cache
// schema version that is bumped whenever simulator behavior changes,
// stranding pre-change entries rather than serving them stale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bulktx/internal/cli"
	"bulktx/internal/sweep"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-sweep", run())
}

func run() error {
	var (
		specFile = flag.String("spec", "", "JSON sweep spec file (overrides axis flags)")
		caseName = flag.String("case", "single-hop", "scenario template: single-hop|multi-hop")
		models   = flag.String("models", "dual", "comma-separated models: dual,sensor,802.11")
		senders  = flag.String("senders", "5,15,25,35", "comma-separated sender counts")
		bursts   = flag.String("bursts", "10,100,500,1000", "comma-separated burst thresholds (sensor packets)")
		traffics = flag.String("traffics", "cbr", "comma-separated traffic models: cbr,poisson,onoff")
		runs     = flag.Int("runs", 3, "seeded repetitions per grid point")
		seed     = flag.Int64("seed", 1, "base seed (repetitions use seed, seed+1, ...)")
		rate     = flag.Float64("rate", 0, "per-sender rate in bits/s (0 keeps the scenario default)")
		duration = flag.Duration("duration", 600*time.Second, "simulated time per run")
		workers  = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		cacheDir = flag.String("cache-dir", "", "on-disk result cache directory (empty = in-memory only)")
		format   = flag.String("format", "table", "output format: table|json|csv")
		outFile  = flag.String("o", "", "output file (empty = stdout)")
		progress = flag.Bool("progress", true, "report per-job progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile after the sweep to this file")
		tel      = telemetry.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-sweep") {
		return nil
	}

	switch *format {
	case "table", "json", "csv":
	default:
		return cli.Usagef("unknown format %q (want table, json or csv)", *format)
	}

	var spec sweep.Spec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		spec, err = sweep.ParseSpecJSON(data)
		if err != nil {
			return err
		}
	} else {
		doc := sweep.SpecDoc{
			Case:      *caseName,
			Models:    splitList(*models),
			Traffics:  splitList(*traffics),
			Runs:      *runs,
			Seed:      *seed,
			RateBps:   *rate,
			DurationS: duration.Seconds(),
		}
		var err error
		if doc.Senders, err = parseInts(*senders); err != nil {
			return cli.Usagef("-senders: %v", err)
		}
		if doc.Bursts, err = parseInts(*bursts); err != nil {
			return cli.Usagef("-bursts: %v", err)
		}
		if spec, err = doc.Spec(); err != nil {
			// The doc was assembled from flag values, so spec failures
			// ("unknown model") are usage problems.
			return cli.Usage(err)
		}
	}

	pool := &sweep.Pool{Workers: *workers, Cache: sweep.NewCache()}
	if *cacheDir != "" {
		cache, err := sweep.NewDiskCache(*cacheDir)
		if err != nil {
			return err
		}
		pool.Cache = cache
	}
	if *progress {
		pool.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rbcp-sweep: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	stopCPU := func() error { return nil }
	if *cpuProf != "" {
		var err error
		if stopCPU, err = telemetry.StartCPUProfile(*cpuProf); err != nil {
			return err
		}
	}

	start := time.Now()
	out, err := pool.RunSpec(spec)
	if stopErr := stopCPU(); err == nil {
		err = stopErr
	}
	if err != nil {
		return err
	}
	if *memProf != "" {
		if err := telemetry.WriteHeapProfile(*memProf); err != nil {
			return err
		}
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "bcp-sweep: %d jobs (%d cached) in %v\n",
			len(out.Jobs), out.Cached, time.Since(start).Round(time.Millisecond))
	}

	w := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "table":
		_, err = fmt.Fprint(w, out.Table("sweep: goodput", sweep.MetricGoodput).Render())
		if err == nil {
			_, err = fmt.Fprint(w, out.Table("sweep: normalized energy", sweep.MetricNormEnergy).Render())
		}
		return err
	case "json":
		return sweep.WriteJSON(w, out)
	default:
		return sweep.WriteCSV(w, out)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
