// Command bcp-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	bcp-experiments -list
//	bcp-experiments -run fig6                 # quick scale (seconds)
//	bcp-experiments -run fig6 -scale full     # the paper's full scenario
//	bcp-experiments -run all -scale quick
//	bcp-experiments -run all -cache-dir ~/.cache/bulktx-sweep
//
// Simulation figures run on the parallel sweep engine; -workers bounds
// its concurrency and -cache-dir persists simulated cells across
// invocations (safe to delete at any time).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/cli"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-experiments", run())
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		name     = flag.String("run", "", "experiment to run (or 'all')")
		scale    = flag.String("scale", "quick", "simulation scale: quick|full")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = all cores)")
		cacheDir = flag.String("cache-dir", "", "on-disk sweep result cache (empty = in-memory only)")
		tel      = telemetry.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-experiments") {
		return nil
	}

	var cache *bulktx.SweepCache
	if *cacheDir != "" {
		var err error
		if cache, err = bulktx.NewSweepDiskCache(*cacheDir); err != nil {
			return err
		}
	}
	bulktx.ConfigureExperiments(*workers, cache)

	if *list || *name == "" {
		fmt.Println("available experiments:")
		for _, n := range bulktx.Experiments() {
			fmt.Println("  ", n)
		}
		if *name == "" && !*list {
			return cli.Usagef("pass -run <name> (or -run all)")
		}
		return nil
	}

	var sc bulktx.ExperimentScale
	switch *scale {
	case "quick":
		sc = bulktx.QuickScale()
	case "full":
		sc = bulktx.FullScale()
	default:
		return cli.Usagef("unknown scale %q (want quick or full)", *scale)
	}

	names := []string{*name}
	if *name == "all" {
		names = bulktx.Experiments()
	}
	for _, n := range names {
		start := time.Now()
		tbl, err := bulktx.RunExperiment(n, sc)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		fmt.Print(tbl.Render())
		fmt.Printf("# regenerated %s in %v\n\n", n, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
