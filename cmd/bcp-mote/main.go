// Command bcp-mote runs the paper's Section 4.2 prototype emulation: a
// single dual-radio sender streaming messages to a single receiver, with
// the IEEE 802.11 radio emulated and all radio events logged.
//
// Usage:
//
//	bcp-mote -threshold 2000            # one run
//	bcp-mote -sweep                     # Figures 11-12 threshold sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/cli"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-mote", run())
}

func run() error {
	var (
		threshold = flag.Int("threshold", 2000, "alpha-s* threshold in bytes")
		messages  = flag.Int("messages", 500, "messages per run")
		interval  = flag.Duration("interval", 100*time.Millisecond, "generation interval")
		sweep     = flag.Bool("sweep", false, "sweep thresholds 500-5000 B (Figures 11-12)")
		tracePath = flag.String("trace", "", "write the radio event log as JSON lines to this file")
		tel       = telemetry.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-mote") {
		return nil
	}

	if *sweep {
		for _, name := range []string{"fig11", "fig12"} {
			tbl, err := bulktx.RunExperiment(name, bulktx.QuickScale())
			if err != nil {
				return err
			}
			fmt.Print(tbl.Render())
			fmt.Println()
		}
		return nil
	}

	cfg := bulktx.NewPrototypeConfig(bulktx.ByteSize(*threshold))
	cfg.Messages = *messages
	cfg.Interval = *interval
	res, err := bulktx.RunPrototype(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("threshold=%d B messages=%d interval=%v\n", *threshold, *messages, *interval)
	fmt.Printf("  delivered              %d\n", res.Delivered)
	fmt.Printf("  dual energy/packet     %.1f uJ\n", res.DualEnergyPerPacket.Microjoules())
	fmt.Printf("  sensor energy/packet   %.1f uJ\n", res.SensorEnergyPerPacket.Microjoules())
	fmt.Printf("  mean delay/packet      %v\n", res.MeanDelayPerPacket.Round(time.Millisecond))
	fmt.Printf("  logged events          %d\n", len(res.Log))
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Log.WriteTrace(f); err != nil {
			return err
		}
		fmt.Printf("  trace written          %s\n", *tracePath)
	}
	return nil
}
