package main

import (
	"errors"
	"testing"
	"time"

	"bulktx/internal/cli"
)

// goodFlags is a valid baseline each case mutates.
func goodFlags() flagValues {
	return flagValues{
		workers: 0, queue: 16, jobWorkers: 1,
		maxCells: 100, maxJobs: 64, cellAttempts: 1, leaseCells: 4,
		drain: 30 * time.Second, readHdrTO: 10 * time.Second,
		readTO: 30 * time.Second, writeTO: 0, idleTO: 2 * time.Minute,
		leaseTTL: 10 * time.Second, stealAfter: 5 * time.Second,
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(goodFlags()); err != nil {
		t.Fatalf("baseline flags rejected: %v", err)
	}
	worker := goodFlags()
	worker.worker = true
	worker.coordinator = "http://coord:8080"
	if err := validateFlags(worker); err != nil {
		t.Fatalf("valid worker flags rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*flagValues)
	}{
		{"negative workers", func(v *flagValues) { v.workers = -1 }},
		{"zero queue", func(v *flagValues) { v.queue = 0 }},
		{"zero job workers", func(v *flagValues) { v.jobWorkers = 0 }},
		{"zero max cells", func(v *flagValues) { v.maxCells = 0 }},
		{"zero max jobs", func(v *flagValues) { v.maxJobs = 0 }},
		{"zero cell attempts", func(v *flagValues) { v.cellAttempts = 0 }},
		{"zero drain timeout", func(v *flagValues) { v.drain = 0 }},
		{"negative read header timeout", func(v *flagValues) { v.readHdrTO = -time.Second }},
		{"negative read timeout", func(v *flagValues) { v.readTO = -time.Second }},
		{"negative write timeout", func(v *flagValues) { v.writeTO = -time.Second }},
		{"negative idle timeout", func(v *flagValues) { v.idleTO = -time.Second }},
		{"zero lease ttl", func(v *flagValues) { v.leaseTTL = 0 }},
		{"negative steal after", func(v *flagValues) { v.stealAfter = -time.Second }},
		{"zero lease cells", func(v *flagValues) { v.leaseCells = 0 }},
		{"worker without coordinator", func(v *flagValues) { v.worker = true }},
		{"coordinator without worker", func(v *flagValues) { v.coordinator = "http://coord:8080" }},
		{"coordinator not a url", func(v *flagValues) { v.worker = true; v.coordinator = "coord:8080" }},
		{"coordinator bad scheme", func(v *flagValues) { v.worker = true; v.coordinator = "ftp://coord" }},
		{"coordinator without host", func(v *flagValues) { v.worker = true; v.coordinator = "http://" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := goodFlags()
			c.mutate(&v)
			err := validateFlags(v)
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			// Every rejection must be a usage error so main exits 2 with
			// the usage hint, per internal/cli conventions.
			var ue *cli.UsageError
			if !errors.As(err, &ue) {
				t.Errorf("error is %T, want *cli.UsageError: %v", err, err)
			}
		})
	}
}
