package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bulktx/internal/sweep"
)

// specBody is the acceptance scenario: a 2-axis sweep (models x
// senders) small enough to finish in well under a second.
const specBody = `{
	"models": ["sensor", "dual"],
	"senders": [5, 10],
	"bursts": [10],
	"runs": 1,
	"duration_s": 30,
	"rate_bps": 2000
}`

// TestServeEndToEnd drives the exact wiring the binary runs (via
// buildService) through the acceptance path: submit a 2-axis sweep,
// observe SSE progress, download results.csv byte-identical to
// bcp-sweep's export, and verify a repeated POST is answered from the
// dedupe/cache without re-simulating (asserted via /metrics).
func TestServeEndToEnd(t *testing.T) {
	svc, err := buildService(serveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx) //nolint:errcheck // teardown
	}()

	// Submit.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// The SSE stream must carry at least one per-cell progress event
	// and terminate with "done".
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(resp.Body) // stream ends when the job does
	resp.Body.Close()
	if n := strings.Count(string(events), "event: cell"); n < 1 {
		t.Fatalf("SSE stream carried %d cell events:\n%s", n, events)
	}
	if !strings.Contains(string(events), "event: done") {
		t.Fatalf("SSE stream did not terminate with done:\n%s", events)
	}

	// results.csv is byte-identical to what bcp-sweep -spec ... -format
	// csv produces: the same ParseSpecJSON -> Pool.RunSpec -> WriteCSV
	// path over the same spec.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/artifacts/results.csv")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results.csv = %d: %s", resp.StatusCode, got)
	}
	spec, err := sweep.ParseSpecJSON([]byte(specBody))
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&sweep.Pool{Cache: sweep.NewCache()}).RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweep.WriteCSV(&want, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("results.csv diverges from bcp-sweep's export:\n got: %s\nwant: %s",
			got, want.Bytes())
	}

	// A repeated POST of the same spec is answered from the existing
	// job without re-simulating.
	simulatedBefore := metric(t, ts.URL, "bulktx_cells_simulated_total")
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat submit = %d: %s", resp.StatusCode, body)
	}
	var again struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
	}
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID || !again.Deduped {
		t.Errorf("repeat POST: id %s deduped %v, want id %s deduped true",
			again.ID, again.Deduped, st.ID)
	}
	if v := metric(t, ts.URL, "bulktx_jobs_deduped_total"); v != 1 {
		t.Errorf("jobs_deduped_total = %g, want 1", v)
	}
	if v := metric(t, ts.URL, "bulktx_cells_simulated_total"); v != simulatedBefore {
		t.Errorf("repeat POST re-simulated: %g -> %g", simulatedBefore, v)
	}
	if v := metric(t, ts.URL, "bulktx_jobs_submitted_total"); v != 1 {
		t.Errorf("jobs_submitted_total = %g, want 1", v)
	}
}

// metric extracts one value from the /metrics exposition.
func metric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}
