// Command bcp-serve runs the HTTP/JSON simulation service: a
// long-lived process accepting single runs and whole sweep grids over
// the shared worker pool and content-keyed result cache, streaming
// per-cell progress as Server-Sent Events and serving the result
// exports as artifacts. See docs/API.md for the endpoint reference and
// docs/TUTORIAL.md for a walkthrough.
//
// Usage:
//
//	bcp-serve                                   # listen on :8080
//	bcp-serve -addr 127.0.0.1:9090 -workers 8
//	bcp-serve -cache-dir ~/.cache/bulktx-sweep  # results survive restarts
//	bcp-serve -state-dir /var/lib/bulktx        # jobs survive crashes too
//	bcp-serve -queue 16 -job-workers 2 -cell-attempts 3
//	bcp-serve -log-format json -log-level debug
//	bcp-serve -pprof 127.0.0.1:6060             # profiling on a separate listener
//
// Identical submissions collapse onto one job (content-keyed dedupe);
// a full job queue answers 429 with a Retry-After computed from the
// observed drain rate. Every request gets one structured access-log
// line on stderr, keyed by a propagated or generated X-Request-ID.
// The -pprof flag serves net/http/pprof on its own mux and listener,
// so the profiling surface never appears on the public address.
//
// With -state-dir, accepted jobs are journaled before they are
// acknowledged and a restarted process resubmits the unfinished ones;
// pair it with -cache-dir and recovery re-serves already-computed
// cells from disk. -cell-attempts > 1 retries panicking cells with
// capped exponential backoff before quarantining them. The listener
// runs with real header/read/idle timeouts (see -read-header-timeout
// and friends); SSE streams clear their own write deadline, so they
// are not bounded by -write-timeout. The BULKTX_FAULTS environment
// variable activates deterministic fault injection (test/chaos use
// only — the process logs loudly when set). On SIGINT/SIGTERM the
// service drains gracefully: accepted jobs finish (bounded by
// -drain-timeout), new submissions get 503, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulktx/internal/cli"
	"bulktx/internal/faultinject"
	"bulktx/internal/service"
	"bulktx/internal/sweep"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-serve", run())
}

// serveConfig is buildService's input: the command line, decoded.
type serveConfig struct {
	workers      int
	cacheDir     string
	stateDir     string
	queue        int
	jobWorkers   int
	maxCells     int
	maxJobs      int
	cellAttempts int
	log          *slog.Logger
}

// buildService assembles the service from the command line; split out
// so the end-to-end tests drive exactly the wiring the binary runs.
func buildService(cfg serveConfig) (*service.Server, error) {
	var cache *sweep.Cache
	if cfg.cacheDir != "" {
		var err error
		if cache, err = sweep.NewDiskCache(cfg.cacheDir); err != nil {
			return nil, err
		}
	}
	return service.New(service.Options{
		Workers:    cfg.workers,
		Cache:      cache,
		QueueLimit: cfg.queue,
		JobWorkers: cfg.jobWorkers,
		MaxCells:   cfg.maxCells,
		MaxJobs:    cfg.maxJobs,
		Logger:     cfg.log,
		StateDir:   cfg.stateDir,
		Retry:      sweep.RetryPolicy{MaxAttempts: cfg.cellAttempts},
	})
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "sweep worker pool size (0 = all cores)")
		cacheDir     = flag.String("cache-dir", "", "on-disk result cache directory (empty = in-memory only)")
		stateDir     = flag.String("state-dir", "", "crash-safe job journal directory: unfinished jobs resubmit on restart (empty = off)")
		queue        = flag.Int("queue", service.DefaultQueueLimit, "max queued jobs before submissions get 429")
		jobWorkers   = flag.Int("job-workers", 1, "jobs executing concurrently (cells within a job are already parallel)")
		maxCells     = flag.Int("max-cells", service.DefaultMaxCells, "max simulations one submission may compile to")
		maxJobs      = flag.Int("max-jobs", service.DefaultMaxJobs, "terminal jobs retained before the oldest are evicted")
		cellAttempts = flag.Int("cell-attempts", 1, "execution attempts per cell before it is quarantined (1 = no retries)")
		drain        = flag.Duration("drain-timeout", 30*time.Second, "max wait for accepted jobs on shutdown")
		readHdrTO    = flag.Duration("read-header-timeout", 10*time.Second, "max wait for a request's headers")
		readTO       = flag.Duration("read-timeout", 30*time.Second, "max wait for a whole request (specs are small)")
		writeTO      = flag.Duration("write-timeout", 0, "max response write time; 0 = unbounded (SSE clears its own deadline either way)")
		idleTO       = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = off; keep it loopback)")
		tel          = telemetry.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-serve") {
		return nil
	}
	log, err := tel.Logger(os.Stderr)
	if err != nil {
		return cli.Usage(err)
	}

	// Deterministic chaos for smoke tests: BULKTX_FAULTS activates
	// seed-driven failure injection inside the real binary. Loud on
	// purpose — a production process should never run with it set.
	if spec, err := faultinject.LoadEnv(); err != nil {
		return cli.Usage(err)
	} else if spec != "" {
		log.Warn("FAULT INJECTION ACTIVE — this process will misbehave on purpose",
			"env", faultinject.EnvVar, "plan", spec)
	}

	svc, err := buildService(serveConfig{
		workers: *workers, cacheDir: *cacheDir, stateDir: *stateDir,
		queue: *queue, jobWorkers: *jobWorkers,
		maxCells: *maxCells, maxJobs: *maxJobs,
		cellAttempts: *cellAttempts, log: log,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Real timeouts so stuck or malicious clients cannot pin
	// connections: SSE streams clear their own per-connection write
	// deadline, so they survive any -write-timeout.
	httpSrv := &http.Server{
		Handler:           svc,
		ReadHeaderTimeout: *readHdrTO,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}
	log.Info("listening", "addr", "http://"+ln.Addr().String(), "build", telemetry.BuildInfo().String())

	// The profiling surface lives on its own mux and listener: the
	// public mux never routes /debug/pprof/, with or without -pprof.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		pprofSrv = &http.Server{Handler: telemetry.PprofMux()}
		go pprofSrv.Serve(pln) //nolint:errcheck // best-effort sidecar; main serve errors decide exit
		log.Info("pprof listening", "addr", "http://"+pln.Addr().String()+"/debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	log.Info("draining", "note", "new submissions get 503", "timeout", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Close(drainCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return err
	}
	if pprofSrv != nil {
		pprofSrv.Close() //nolint:errcheck // profiling sidecar; nothing to drain
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("drained, exiting")
	return nil
}
