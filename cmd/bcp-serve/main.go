// Command bcp-serve runs the HTTP/JSON simulation service: a
// long-lived process accepting single runs and whole sweep grids over
// the shared worker pool and content-keyed result cache, streaming
// per-cell progress as Server-Sent Events and serving the result
// exports as artifacts. See docs/API.md for the endpoint reference and
// docs/TUTORIAL.md for a walkthrough.
//
// Usage:
//
//	bcp-serve                                   # listen on :8080
//	bcp-serve -addr 127.0.0.1:9090 -workers 8
//	bcp-serve -cache-dir ~/.cache/bulktx-sweep  # results survive restarts
//	bcp-serve -state-dir /var/lib/bulktx        # jobs survive crashes too
//	bcp-serve -queue 16 -job-workers 2 -cell-attempts 3
//	bcp-serve -log-format json -log-level debug
//	bcp-serve -pprof 127.0.0.1:6060             # profiling on a separate listener
//	bcp-serve -addr :8080 -lease-ttl 10s        # fleet coordinator (default role)
//	bcp-serve -addr :8081 -worker -coordinator http://coord:8080
//
// Cluster mode: every bcp-serve is a coordinator — the /v1/cluster
// routes are always live — and any bcp-serve becomes a worker peer
// with -worker -coordinator=<url>: it registers, leases cells,
// simulates them on its own pool (and disk cache), and uploads
// content-keyed results, while still serving its own HTTP surface.
// Submitted sweeps shard across live workers with work stealing;
// a worker whose heartbeat lapses has its leased cells requeued, and
// the merged results are byte-identical to a single-process run.
//
// Identical submissions collapse onto one job (content-keyed dedupe);
// a full job queue answers 429 with a Retry-After computed from the
// observed drain rate. Every request gets one structured access-log
// line on stderr, keyed by a propagated or generated X-Request-ID.
// The -pprof flag serves net/http/pprof on its own mux and listener,
// so the profiling surface never appears on the public address.
//
// With -state-dir, accepted jobs are journaled before they are
// acknowledged and a restarted process resubmits the unfinished ones;
// pair it with -cache-dir and recovery re-serves already-computed
// cells from disk. -cell-attempts > 1 retries panicking cells with
// capped exponential backoff before quarantining them. The listener
// runs with real header/read/idle timeouts (see -read-header-timeout
// and friends); SSE streams clear their own write deadline, so they
// are not bounded by -write-timeout. The BULKTX_FAULTS environment
// variable activates deterministic fault injection (test/chaos use
// only — the process logs loudly when set). On SIGINT/SIGTERM the
// service drains gracefully: accepted jobs finish (bounded by
// -drain-timeout), new submissions get 503, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulktx/internal/cli"
	"bulktx/internal/cluster"
	"bulktx/internal/faultinject"
	"bulktx/internal/service"
	"bulktx/internal/sweep"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-serve", run())
}

// serveConfig is buildService's input: the command line, decoded.
type serveConfig struct {
	workers      int
	cacheDir     string
	stateDir     string
	queue        int
	jobWorkers   int
	maxCells     int
	maxJobs      int
	cellAttempts int
	leaseTTL     time.Duration
	stealAfter   time.Duration
	leaseCells   int
	log          *slog.Logger
}

// buildService assembles the service from the command line; split out
// so the end-to-end tests drive exactly the wiring the binary runs.
func buildService(cfg serveConfig) (*service.Server, error) {
	var cache *sweep.Cache
	if cfg.cacheDir != "" {
		var err error
		if cache, err = sweep.NewDiskCache(cfg.cacheDir); err != nil {
			return nil, err
		}
	}
	return service.New(service.Options{
		Workers:           cfg.workers,
		Cache:             cache,
		QueueLimit:        cfg.queue,
		JobWorkers:        cfg.jobWorkers,
		MaxCells:          cfg.maxCells,
		MaxJobs:           cfg.maxJobs,
		Logger:            cfg.log,
		StateDir:          cfg.stateDir,
		Retry:             sweep.RetryPolicy{MaxAttempts: cfg.cellAttempts},
		ClusterLeaseTTL:   cfg.leaseTTL,
		ClusterStealAfter: cfg.stealAfter,
		ClusterLeaseCells: cfg.leaseCells,
	})
}

// flagValues is validateFlags's input: every numeric or role flag that
// can be handed a nonsensical value, decoded but unvalidated.
type flagValues struct {
	workers, queue, jobWorkers int
	maxCells, maxJobs          int
	cellAttempts, leaseCells   int
	drain, readHdrTO, readTO   time.Duration
	writeTO, idleTO            time.Duration
	leaseTTL, stealAfter       time.Duration
	worker                     bool
	coordinator                string
}

// validateFlags rejects nonsensical flag values — a zero cell-attempts
// budget, a negative queue bound, a worker with nowhere to pull from —
// as usage errors (exit 2 with a usage hint) instead of letting them
// misconfigure a running service.
func validateFlags(v flagValues) error {
	switch {
	case v.workers < 0:
		return cli.Usagef("-workers %d: must be >= 0 (0 = all cores)", v.workers)
	case v.queue < 1:
		return cli.Usagef("-queue %d: must be >= 1", v.queue)
	case v.jobWorkers < 1:
		return cli.Usagef("-job-workers %d: must be >= 1", v.jobWorkers)
	case v.maxCells < 1:
		return cli.Usagef("-max-cells %d: must be >= 1", v.maxCells)
	case v.maxJobs < 1:
		return cli.Usagef("-max-jobs %d: must be >= 1", v.maxJobs)
	case v.cellAttempts < 1:
		return cli.Usagef("-cell-attempts %d: must be >= 1 (1 = no retries)", v.cellAttempts)
	case v.drain <= 0:
		return cli.Usagef("-drain-timeout %s: must be > 0", v.drain)
	case v.readHdrTO < 0:
		return cli.Usagef("-read-header-timeout %s: must be >= 0", v.readHdrTO)
	case v.readTO < 0:
		return cli.Usagef("-read-timeout %s: must be >= 0", v.readTO)
	case v.writeTO < 0:
		return cli.Usagef("-write-timeout %s: must be >= 0", v.writeTO)
	case v.idleTO < 0:
		return cli.Usagef("-idle-timeout %s: must be >= 0", v.idleTO)
	case v.leaseTTL <= 0:
		return cli.Usagef("-lease-ttl %s: must be > 0", v.leaseTTL)
	case v.stealAfter < 0:
		return cli.Usagef("-steal-after %s: must be >= 0", v.stealAfter)
	case v.leaseCells < 1:
		return cli.Usagef("-lease-cells %d: must be >= 1", v.leaseCells)
	case v.worker && v.coordinator == "":
		return cli.Usagef("-worker requires -coordinator=<url>")
	case !v.worker && v.coordinator != "":
		return cli.Usagef("-coordinator only applies with -worker")
	}
	if v.coordinator != "" {
		u, err := url.Parse(v.coordinator)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return cli.Usagef("-coordinator %q: must be an http(s) URL like http://host:8080", v.coordinator)
		}
	}
	return nil
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "sweep worker pool size (0 = all cores)")
		cacheDir     = flag.String("cache-dir", "", "on-disk result cache directory (empty = in-memory only)")
		stateDir     = flag.String("state-dir", "", "crash-safe job journal directory: unfinished jobs resubmit on restart (empty = off)")
		queue        = flag.Int("queue", service.DefaultQueueLimit, "max queued jobs before submissions get 429")
		jobWorkers   = flag.Int("job-workers", 1, "jobs executing concurrently (cells within a job are already parallel)")
		maxCells     = flag.Int("max-cells", service.DefaultMaxCells, "max simulations one submission may compile to")
		maxJobs      = flag.Int("max-jobs", service.DefaultMaxJobs, "terminal jobs retained before the oldest are evicted")
		cellAttempts = flag.Int("cell-attempts", 1, "execution attempts per cell before it is quarantined (1 = no retries)")
		drain        = flag.Duration("drain-timeout", 30*time.Second, "max wait for accepted jobs on shutdown")
		readHdrTO    = flag.Duration("read-header-timeout", 10*time.Second, "max wait for a request's headers")
		readTO       = flag.Duration("read-timeout", 30*time.Second, "max wait for a whole request (specs are small)")
		writeTO      = flag.Duration("write-timeout", 0, "max response write time; 0 = unbounded (SSE clears its own deadline either way)")
		idleTO       = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = off; keep it loopback)")
		worker       = flag.Bool("worker", false, "also run as a fleet worker: pull cell leases from -coordinator and upload results")
		coordinator  = flag.String("coordinator", "", "coordinator base URL to pull work from (requires -worker)")
		workerName   = flag.String("worker-name", "", "advertised worker name (default: hostname)")
		leaseTTL     = flag.Duration("lease-ttl", cluster.DefaultLeaseTTL, "worker liveness window: a silent worker's leased cells requeue after this")
		stealAfter   = flag.Duration("steal-after", cluster.DefaultStealAfter, "straggler threshold: a cell leased longer may be duplicated onto an idle worker (0 = never)")
		leaseCells   = flag.Int("lease-cells", cluster.DefaultLeaseCells, "max cells handed out per worker lease call")
		tel          = telemetry.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-serve") {
		return nil
	}
	if err := validateFlags(flagValues{
		workers: *workers, queue: *queue, jobWorkers: *jobWorkers,
		maxCells: *maxCells, maxJobs: *maxJobs,
		cellAttempts: *cellAttempts, leaseCells: *leaseCells,
		drain: *drain, readHdrTO: *readHdrTO, readTO: *readTO,
		writeTO: *writeTO, idleTO: *idleTO,
		leaseTTL: *leaseTTL, stealAfter: *stealAfter,
		worker: *worker, coordinator: *coordinator,
	}); err != nil {
		return err
	}
	log, err := tel.Logger(os.Stderr)
	if err != nil {
		return cli.Usage(err)
	}

	// Deterministic chaos for smoke tests: BULKTX_FAULTS activates
	// seed-driven failure injection inside the real binary. Loud on
	// purpose — a production process should never run with it set.
	if spec, err := faultinject.LoadEnv(); err != nil {
		return cli.Usage(err)
	} else if spec != "" {
		log.Warn("FAULT INJECTION ACTIVE — this process will misbehave on purpose",
			"env", faultinject.EnvVar, "plan", spec)
	}

	svc, err := buildService(serveConfig{
		workers: *workers, cacheDir: *cacheDir, stateDir: *stateDir,
		queue: *queue, jobWorkers: *jobWorkers,
		maxCells: *maxCells, maxJobs: *maxJobs,
		cellAttempts: *cellAttempts,
		leaseTTL:     *leaseTTL, stealAfter: *stealAfter, leaseCells: *leaseCells,
		log: log,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Real timeouts so stuck or malicious clients cannot pin
	// connections: SSE streams clear their own per-connection write
	// deadline, so they survive any -write-timeout.
	httpSrv := &http.Server{
		Handler:           svc,
		ReadHeaderTimeout: *readHdrTO,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}
	log.Info("listening", "addr", "http://"+ln.Addr().String(), "build", telemetry.BuildInfo().String())

	// The profiling surface lives on its own mux and listener: the
	// public mux never routes /debug/pprof/, with or without -pprof.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		pprofSrv = &http.Server{Handler: telemetry.PprofMux()}
		go pprofSrv.Serve(pln) //nolint:errcheck // best-effort sidecar; main serve errors decide exit
		log.Info("pprof listening", "addr", "http://"+pln.Addr().String()+"/debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Worker role: pull cell leases from the coordinator onto this
	// process's own pool (and disk cache) while the local HTTP surface
	// keeps serving. The pull loop ends with the signal context; leases
	// still held simply expire and requeue on the coordinator.
	if *worker {
		name := *workerName
		if name == "" {
			if name, err = os.Hostname(); err != nil {
				name = ln.Addr().String()
			}
		}
		wk := &cluster.Worker{
			Coordinator: *coordinator,
			Name:        name,
			Pool:        svc.Pool(),
			Log:         log,
		}
		log.Info("worker mode: pulling cell leases", "coordinator", *coordinator, "name", name)
		go wk.Run(ctx) //nolint:errcheck // only returns the signal ctx's cause
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	log.Info("draining", "note", "new submissions get 503", "timeout", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Close(drainCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return err
	}
	if pprofSrv != nil {
		pprofSrv.Close() //nolint:errcheck // profiling sidecar; nothing to drain
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("drained, exiting")
	return nil
}
