// Command bcp-serve runs the HTTP/JSON simulation service: a
// long-lived process accepting single runs and whole sweep grids over
// the shared worker pool and content-keyed result cache, streaming
// per-cell progress as Server-Sent Events and serving the result
// exports as artifacts. See docs/API.md for the endpoint reference and
// docs/TUTORIAL.md for a walkthrough.
//
// Usage:
//
//	bcp-serve                                   # listen on :8080
//	bcp-serve -addr 127.0.0.1:9090 -workers 8
//	bcp-serve -cache-dir ~/.cache/bulktx-sweep  # results survive restarts
//	bcp-serve -queue 16 -job-workers 2
//
// Identical submissions collapse onto one job (content-keyed dedupe);
// a full job queue answers 429 with Retry-After. On SIGINT/SIGTERM the
// service drains gracefully: accepted jobs finish (bounded by
// -drain-timeout), new submissions get 503, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulktx/internal/cli"
	"bulktx/internal/service"
	"bulktx/internal/sweep"
)

func main() {
	cli.Exit("bcp-serve", run())
}

// buildService assembles the service from the command line; split out
// so the end-to-end tests drive exactly the wiring the binary runs.
func buildService(workers int, cacheDir string, queue, jobWorkers, maxCells, maxJobs int) (*service.Server, error) {
	var cache *sweep.Cache
	if cacheDir != "" {
		var err error
		if cache, err = sweep.NewDiskCache(cacheDir); err != nil {
			return nil, err
		}
	}
	return service.New(service.Options{
		Workers:    workers,
		Cache:      cache,
		QueueLimit: queue,
		JobWorkers: jobWorkers,
		MaxCells:   maxCells,
		MaxJobs:    maxJobs,
	}), nil
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = all cores)")
		cacheDir   = flag.String("cache-dir", "", "on-disk result cache directory (empty = in-memory only)")
		queue      = flag.Int("queue", service.DefaultQueueLimit, "max queued jobs before submissions get 429")
		jobWorkers = flag.Int("job-workers", 1, "jobs executing concurrently (cells within a job are already parallel)")
		maxCells   = flag.Int("max-cells", service.DefaultMaxCells, "max simulations one submission may compile to")
		maxJobs    = flag.Int("max-jobs", service.DefaultMaxJobs, "terminal jobs retained before the oldest are evicted")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "max wait for accepted jobs on shutdown")
	)
	flag.Parse()

	svc, err := buildService(*workers, *cacheDir, *queue, *jobWorkers, *maxCells, *maxJobs)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc}
	fmt.Fprintf(os.Stderr, "bcp-serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	fmt.Fprintln(os.Stderr, "bcp-serve: draining (new submissions get 503)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Close(drainCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "bcp-serve: drained, exiting")
	return nil
}
