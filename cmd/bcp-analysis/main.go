// Command bcp-analysis evaluates the paper's Section 2 break-even
// analysis from the command line: the break-even size s* for any radio
// pair, and the analytic artifacts Table 1 and Figures 1-4.
//
// Usage:
//
//	bcp-analysis                          # break-even report, all pairs
//	bcp-analysis -low Micaz -high "Lucent (11Mbps)" -idle 100ms
//	bcp-analysis -artifact fig2           # print one analytic artifact
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/analysis"
	"bulktx/internal/cli"
	"bulktx/internal/energy"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-analysis", run())
}

func run() error {
	var (
		low      = flag.String("low", "", "low-power radio name (empty: all)")
		high     = flag.String("high", "", "high-power radio name (empty: all)")
		idle     = flag.Duration("idle", 0, "high-power idle time per transfer")
		fp       = flag.Int("fp", 1, "forward progress in sensor hops")
		artifact = flag.String("artifact", "", "print one analytic artifact: table1|fig1|fig2|fig3|fig4")
		tel      = telemetry.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-analysis") {
		return nil
	}

	if *artifact != "" {
		tbl, err := bulktx.RunExperiment(*artifact, bulktx.QuickScale())
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
		return nil
	}

	lows, err := profiles(*low, energy.LowPowerProfiles())
	if err != nil {
		return err
	}
	highs, err := profiles(*high, energy.HighPowerProfiles())
	if err != nil {
		return err
	}

	fmt.Printf("%-18s %-10s %12s %14s %14s\n",
		"high-power", "low-power", "feasible", "s* (bytes)", "savings@10KB")
	for _, h := range highs {
		for _, l := range lows {
			if err := report(l, h, *idle, *fp); err != nil {
				return err
			}
		}
	}
	return nil
}

func profiles(name string, all []energy.Profile) ([]energy.Profile, error) {
	if name == "" {
		return all, nil
	}
	p, err := energy.ProfileByName(name)
	if err != nil {
		// -low/-high carried an unknown radio name: a usage problem.
		return nil, cli.Usage(err)
	}
	return []energy.Profile{p}, nil
}

func report(low, high energy.Profile, idle time.Duration, fp int) error {
	m, err := bulktx.NewBreakEvenModel(low, high, bulktx.WithIdleTime(idle))
	if err != nil {
		return err
	}
	se, err := m.BreakEvenMH(fp)
	feasible := "yes"
	sStar := "-"
	savings := "-"
	switch {
	case errors.Is(err, analysis.ErrInfeasible):
		feasible = "no"
	case err != nil:
		return err
	default:
		sStar = fmt.Sprintf("%d", se.Bytes())
		savings = fmt.Sprintf("%.1f%%", m.SavingsMH(10*1024, fp)*100)
	}
	fmt.Printf("%-18s %-10s %12s %14s %14s\n",
		high.Name, low.Name, feasible, sStar, savings)
	return nil
}
