// Command bcp-report renders the paper-reproduction report: a markdown
// document regenerating the paper's tables and figures from the
// experiment registry, plus traced per-node energy breakdowns for each
// evaluation model. The output is byte-stable for a fixed scale and
// seed, so reports are diffable across commits.
//
// Usage:
//
//	bcp-report                                  # all experiments, quick scale, stdout
//	bcp-report -o report.md -scale full
//	bcp-report -run table1,fig5,fig6 -workers 4
//	bcp-report -trace-jsonl trace.jsonl -trace-energy-csv energy.csv
//
// Simulated figures run on the shared sweep engine; -workers bounds
// its concurrency and -cache-dir persists simulated cells across
// invocations. The -trace-* flags additionally export the traced
// breakdown runs through the sweep trace exporters.
package main

import (
	"flag"
	"os"
	"strings"

	"bulktx"
	"bulktx/internal/cli"
	"bulktx/internal/experiments"
	"bulktx/internal/report"
	"bulktx/internal/sweep"
	"bulktx/internal/telemetry"
)

func main() {
	cli.Exit("bcp-report", run())
}

func run() error {
	var (
		names     = flag.String("run", "all", "comma-separated experiment names (or 'all')")
		scale     = flag.String("scale", "quick", "simulation scale: quick|full")
		out       = flag.String("o", "-", "output path ('-' = stdout)")
		workers   = flag.Int("workers", 0, "sweep worker pool size (0 = all cores)")
		cacheDir  = flag.String("cache-dir", "", "on-disk sweep result cache (empty = in-memory only)")
		seed      = flag.Int64("breakdown-seed", 1, "seed of the traced breakdown runs")
		duration  = flag.Duration("breakdown-duration", 0, "simulated length of the breakdown runs (0 = 300s, negative = skip)")
		jsonlPath = flag.String("trace-jsonl", "", "also export the traced breakdown runs as JSONL")
		energyCSV = flag.String("trace-energy-csv", "", "also export per-node energy breakdowns as CSV")
		eventsCSV = flag.String("trace-events-csv", "", "also export trace events as CSV")
		tel       = telemetry.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if tel.HandleVersion(os.Stdout, "bcp-report") {
		return nil
	}

	var cache *bulktx.SweepCache
	if *cacheDir != "" {
		var err error
		if cache, err = bulktx.NewSweepDiskCache(*cacheDir); err != nil {
			return err
		}
	}
	bulktx.ConfigureExperiments(*workers, cache)

	opts := report.Options{
		ScaleName:         *scale,
		BreakdownSeed:     *seed,
		BreakdownDuration: *duration,
	}
	switch *scale {
	case "quick":
		opts.Scale = experiments.QuickScale()
	case "full":
		opts.Scale = experiments.FullScale()
	default:
		return cli.Usagef("unknown scale %q (want quick or full)", *scale)
	}
	if *names != "all" && *names != "" {
		opts.Experiments = strings.Split(*names, ",")
	}
	// Event and sample streams are only worth recording when a trace
	// export will carry them out. The sampling interval follows the
	// breakdown runs' own duration (~100 points per run), not the
	// figure sweeps' scale.
	if *jsonlPath != "" || *eventsCSV != "" {
		breakdown := *duration
		if breakdown == 0 {
			breakdown = report.DefaultBreakdownDuration
		}
		opts.TraceOptions = sweep.TraceOptionsFor(*jsonlPath, *eventsCSV, breakdown/100)
	}

	rep, err := report.Build(opts)
	if err != nil {
		return err
	}

	if *out == "-" {
		if _, err := os.Stdout.Write(rep.Markdown); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, rep.Markdown, 0o644); err != nil {
		return err
	}

	return sweep.ExportTraceFiles(rep.Breakdowns, *jsonlPath, *eventsCSV, *energyCSV)
}
