module bulktx

go 1.24
