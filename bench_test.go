package bulktx_test

import (
	"testing"
	"time"

	"bulktx"
	"bulktx/internal/bench"
	"bulktx/internal/experiments"
	"bulktx/internal/metrics"
	"bulktx/internal/params"
	"bulktx/internal/sim"
)

// benchScale bounds each simulation-figure regeneration to a fraction of
// a second per iteration so testing.B can sample it repeatedly. The
// qualitative shapes survive (see EXPERIMENTS.md for quick- and
// full-scale outputs).
func benchScale() bulktx.ExperimentScale {
	return experiments.Scale{
		Duration: 60 * time.Second,
		Runs:     1,
		BaseSeed: 1,
		Senders:  []int{5, 15},
		Bursts:   []int{10, 100},
		SHRate:   params.HighRate,
		MHRate:   params.HighRate,
	}
}

// benchArtifact measures the regeneration of one paper artifact.
func benchArtifact(b *testing.B, name string) {
	b.Helper()
	scale := benchScale()
	var tbl metrics.Table
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err = bulktx.RunExperiment(name, scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tbl.Series) == 0 {
		b.Fatalf("%s produced no series", name)
	}
}

// Table 1: radio energy characteristics.
func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }

// Figure 1: single-hop energy vs data size (analytic).
func BenchmarkFig1(b *testing.B) { benchArtifact(b, "fig1") }

// Figure 2: break-even size vs idle time (analytic).
func BenchmarkFig2(b *testing.B) { benchArtifact(b, "fig2") }

// Figure 3: break-even size vs forward progress (analytic).
func BenchmarkFig3(b *testing.B) { benchArtifact(b, "fig3") }

// Figure 4: burst-size energy savings (analytic).
func BenchmarkFig4(b *testing.B) { benchArtifact(b, "fig4") }

// Figure 5: single-hop goodput vs senders (simulation).
func BenchmarkFig5(b *testing.B) { benchArtifact(b, "fig5") }

// Figure 6: single-hop normalized energy vs senders (simulation).
func BenchmarkFig6(b *testing.B) { benchArtifact(b, "fig6") }

// Figure 7: single-hop energy vs delay trade-off (simulation).
func BenchmarkFig7(b *testing.B) { benchArtifact(b, "fig7") }

// Figure 8: multi-hop goodput vs senders (simulation).
func BenchmarkFig8(b *testing.B) { benchArtifact(b, "fig8") }

// Figure 9: multi-hop normalized energy vs senders (simulation).
func BenchmarkFig9(b *testing.B) { benchArtifact(b, "fig9") }

// Figure 10: multi-hop energy vs delay trade-off (simulation).
func BenchmarkFig10(b *testing.B) { benchArtifact(b, "fig10") }

// Figure 11: prototype energy per packet vs threshold (mote emulation).
func BenchmarkFig11(b *testing.B) { benchArtifact(b, "fig11") }

// Figure 12: prototype energy per packet vs delay (mote emulation).
func BenchmarkFig12(b *testing.B) { benchArtifact(b, "fig12") }

// Ablations (DESIGN.md Section 6).
func BenchmarkAblationShortcut(b *testing.B) { benchArtifact(b, "ablation-shortcut") }
func BenchmarkAblationLinger(b *testing.B)   { benchArtifact(b, "ablation-linger") }
func BenchmarkAblationMinGrant(b *testing.B) { benchArtifact(b, "ablation-mingrant") }
func BenchmarkAblationLoss(b *testing.B)     { benchArtifact(b, "ablation-loss") }

// BenchmarkSimulationThroughput measures raw simulator speed: events per
// second on one dual-radio run (15 senders, burst 100, 2 Kbps). The body
// lives in internal/bench, shared with cmd/bcp-bench's JSON baselines.
func BenchmarkSimulationThroughput(b *testing.B) { bench.SimulationThroughput(b) }

// BenchmarkBreakEvenSolve measures one discrete break-even search.
func BenchmarkBreakEvenSolve(b *testing.B) {
	micaz, err := bulktx.RadioByName("Micaz")
	if err != nil {
		b.Fatal(err)
	}
	lucent, err := bulktx.RadioByName("Lucent (11Mbps)")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bulktx.NewBreakEvenModel(micaz, lucent)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.BreakEven(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrototypeRun measures one 500-message mote emulation.
func BenchmarkPrototypeRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := bulktx.NewPrototypeConfig(2000)
		cfg.Seed = int64(i + 1)
		if _, err := bulktx.RunPrototype(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// nopEvent is a capture-free callback for the zero-allocation check: a
// top-level func converts to a func value without heap allocation.
func nopEvent() {}

// TestPooledHotPathZeroAllocs pins the scheduler's allocation-free
// hot-path contract on both queue backends: once the queue, slot table
// and (for the calendar) bucket ring are warm, a steady
// schedule/cancel/drain cycle must not allocate at all. This is the
// property the pooled per-run allocators build on — if the event core
// regains a per-event allocation, every large sweep pays it millions
// of times.
func TestPooledHotPathZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sched *sim.Scheduler
	}{
		{"heap", sim.NewScheduler(1)},
		{"calendar", sim.NewSchedulerPolicy(1, sim.QueueCalendar)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.sched
			// Warm the backing arrays far past what the measured loop
			// needs: queue/buckets, slot table and free list all reach
			// steady-state capacity here.
			for i := 0; i < 10000; i++ {
				s.After(time.Duration(i%997)*time.Microsecond, nopEvent)
			}
			s.Run()
			avg := testing.AllocsPerRun(1000, func() {
				for i := 0; i < 8; i++ {
					id := s.After(time.Duration(1+i%5)*time.Microsecond, nopEvent)
					if i%3 == 0 {
						s.Cancel(id)
					}
				}
				s.Run()
			})
			if avg != 0 {
				t.Errorf("warm schedule/cancel/drain cycle allocates %.2f times per run, want 0", avg)
			}
		})
	}
}
