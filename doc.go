// Package bulktx is a faithful, full-system reproduction of
//
//	"Improving Energy Conservation Using Bulk Transmission over
//	 High-Power Radios in Sensor Networks",
//	C. Sengul, M. Bakht, A. Harris III, T. Abdelzaher, R. Kravets,
//	ICDCS 2008.
//
// The paper shows that adding a high-power, high-rate IEEE 802.11 radio
// to a low-power sensor platform saves energy once enough data is
// accumulated and shipped in bulk, and contributes the Bulk
// Communication Protocol (BCP) that manages the buffering, the wake-up
// handshake over the low-power radio, and the burst transfer over the
// high-power radio.
//
// This package is the public facade over the full implementation:
//
//   - the break-even analysis of Section 2 (energy models, s*, burst
//     savings) — see BreakEvenModel;
//   - the BCP protocol of Section 3 with its dual-radio simulation stack
//     (discrete-event engine, PHY channels, CSMA and DCF MACs, routing,
//     energy metering) — see RunSimulation;
//   - the prototype emulation of Section 4.2 — see RunPrototype;
//   - runners that regenerate every table and figure of the paper — see
//     RunExperiment;
//   - a parallel sweep-orchestration engine for grids of seeded runs
//     (the shape of every evaluation in the paper) — see RunSweep;
//   - a composable Scenario API generalizing the paper's single
//     evaluation shape to arbitrary deployments — see NewScenario.
//
// # Scenarios
//
// NewScenario assembles a simulation from pluggable parts under
// functional options, validating everything at build time: a Topology
// (GridTopology, UniformTopology, ClusteredTopology, LinearTopology,
// ExplicitTopology), sink and sender placement policies
// (SinkNearCenter/SinkAt, StableShuffleSenders/ExplicitSenders/
// FarthestSenders), a Workload (CBR, Poisson or on/off arrivals with
// homogeneous or per-sender rates), a LinkModel (flat or
// distance-dependent loss) and a Churn model (scheduled or random node
// failures and recoveries). RunScenario executes one run;
// RunScenarioMany fans seeded repetitions over the CPU.
//
//	s, _ := bulktx.NewScenario(
//		bulktx.WithTopology(bulktx.LinearTopology(24, 180)),
//		bulktx.WithSink(bulktx.SinkAt(0)),
//		bulktx.WithSenderPolicy(bulktx.FarthestSenders()),
//		bulktx.WithSenders(6),
//		bulktx.WithChurn(bulktx.RandomChurn(2, 30*time.Second, 7)),
//	)
//	res, _ := bulktx.RunScenario(s)
//
// The flat SimConfig remains as the serializable compatibility layer
// behind sweeps and JSON specs; it compiles onto a Scenario
// (SimConfig.Scenario) and fixed-seed results through either surface
// are byte-identical. Treat direct SimConfig field mutation as
// deprecated outside serialization — the builder makes every default
// explicit and rejects invalid compositions before any event runs.
//
// # Sweeps
//
// A SweepSpec declares axes (model, senders, burst threshold, traffic,
// seeds) over a SimConfig template; the sweep engine compiles it into a
// flat job list and executes it on a worker pool sized to the machine.
// Each run derives all of its randomness from its own seed, so parallel
// results are byte-identical to serial execution. An optional
// SweepCache memoizes results keyed by a hash of the full run
// configuration — in memory, and optionally on disk (NewSweepDiskCache)
// so overlapping sweeps across processes only simulate new points.
// Outcomes aggregate per grid point (mean / 95% CI over seeds) and
// export as metrics tables, JSON or CSV.
//
// The experiment runners behind RunExperiment execute on a shared
// instance of this engine (see ConfigureExperiments), so regenerating
// several figures reuses every overlapping grid cell. The cmd/bcp-sweep
// executable exposes the engine directly for ad-hoc grids, and
// NewSimService wraps it in a long-lived HTTP job API (cmd/bcp-serve):
// content-keyed submissions that dedupe onto in-flight or cached work,
// SSE progress streams, artifact exports, bounded-queue backpressure
// and graceful drain — see docs/API.md.
//
// # Tracing
//
// WithTrace attaches a per-run observability probe to any scenario:
// per-node per-radio per-state energy breakdowns (SimResult.PerNode,
// rendered by EnergyBreakdownTable, summing back to TotalEnergy),
// packet provenance with per-hop latency, radio state transitions and
// periodic energy samples (SimResult.Trace), selected by TraceOptions.
// Untraced runs pay nothing: every probe site is a nil check, and
// fixed-seed results are byte-identical with tracing off. Traced runs
// export as JSONL and CSV (WriteTraceJSONL, WriteNodeEnergyCSV,
// WriteTraceEvents); cmd/bcp-report renders the registry plus traced
// breakdowns into a byte-stable markdown reproduction report.
//
// # Event core
//
// Every simulated run executes on the internal/sim discrete-event
// engine, whose hot path is allocation-free: events live in a
// value-typed 4-ary heap ordered by (time, sequence), callbacks in a
// free-list-backed handle table, and cancellation is lazy — Cancel
// retires the handle in O(1) and the heap entry is discarded when it
// surfaces, with an O(n) compaction once cancelled debris dominates.
// Determinism is unaffected: executed events follow the exact
// (time, sequence) order, so a fixed seed produces a byte-identical
// trajectory; only cancelled (never-executed) bookkeeping changed.
//
// The radio layer exploits static topology the same way: each channel
// precomputes at construction a dense per-node table of pre-sorted
// in-range receivers, so a transmission walks one list instead of
// scanning, filtering and sorting the node set. Layouts are immutable;
// if node mobility is ever added, the neighbor index must be rebuilt on
// any position change. cmd/bcp-bench measures the core benchmarks and
// writes the JSON baselines committed as BENCH_PR*.json.
//
// The executables under cmd/ and the runnable scenarios under examples/
// are thin clients of this API.
package bulktx
