// Scenarios: one deployment question, five answers.
//
// The paper evaluates BCP on exactly one shape — a 6x6 grid with a
// near-center sink and CBR senders. The composable Scenario API asks
// the same energy question on deployments the paper could not express:
// a uniform-random geometric scatter, a clustered event-driven field, a
// linear corridor (pipeline / tunnel), and a grid under node churn with
// distance-dependent link loss. Each row runs the dual-radio model and
// its sensor-network baseline on an identical layout and reports the
// energy advantage of bulk transmission.
//
// Run with: go run ./examples/scenarios
package main

import (
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		senders = 8
		burst   = 500
		runs    = 3
	)
	duration := 10 * time.Minute
	rate := 2 * bulktx.Kbps

	rows := []struct {
		name string
		opts []bulktx.ScenarioOption
	}{
		{"grid 6x6 (the paper)", nil},
		{"uniform random scatter", []bulktx.ScenarioOption{
			bulktx.WithTopology(bulktx.UniformTopology(36, 150, 1)),
		}},
		{"clustered hotspots", []bulktx.ScenarioOption{
			bulktx.WithTopology(bulktx.ClusteredTopology(36, 4, 200, 25, 1)),
		}},
		{"linear corridor", []bulktx.ScenarioOption{
			bulktx.WithTopology(bulktx.LinearTopology(36, 200)),
		}},
		{"grid + churn + path loss", []bulktx.ScenarioOption{
			bulktx.WithChurn(bulktx.RandomChurn(2, 30*time.Second, 7)),
			bulktx.WithLinks(bulktx.LinkModel{
				SensorLossAt: bulktx.DistanceLoss(0, 0.15, 40),
			}),
		}},
	}

	fmt.Printf("BCP (burst %d) vs pure sensor network, %d senders at %v for %v\n\n",
		burst, senders, rate, duration)
	fmt.Printf("%-26s %10s %10s %16s %16s %9s\n",
		"deployment", "goodput", "(sensor)", "J/Kbit", "(sensor)", "saving")

	for _, row := range rows {
		base := []bulktx.ScenarioOption{
			bulktx.WithSenders(senders),
			bulktx.WithBurst(burst),
			bulktx.WithWorkload(bulktx.CBRWorkload(rate)),
			bulktx.WithDuration(duration),
		}
		base = append(base, row.opts...)

		dual, err := bulktx.NewScenario(append(base[:len(base):len(base)],
			bulktx.WithModel(bulktx.ModelDual))...)
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		sensor, err := bulktx.NewScenario(append(base[:len(base):len(base)],
			bulktx.WithModel(bulktx.ModelSensor))...)
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}

		dualRes, err := bulktx.RunScenarioMany(dual, runs, 1)
		if err != nil {
			return err
		}
		sensorRes, err := bulktx.RunScenarioMany(sensor, runs, 1)
		if err != nil {
			return err
		}
		dG, dE, _, _ := netsim.Summaries(dualRes)
		sG, sE, _, _ := netsim.Summaries(sensorRes)
		fmt.Printf("%-26s %10.3f %10.3f %16.5f %16.5f %8.1fx\n",
			row.name, dG.Mean, sG.Mean, dE.Mean, sE.Mean, sE.Mean/dE.Mean)
	}

	fmt.Println("\nThe energy advantage survives every deployment shape: wherever enough" +
		"\ndata accumulates, shipping it in bulk over the high-power radio beats" +
		"\ntrickling it hop-by-hop — even with nodes failing mid-run.")
	return nil
}
