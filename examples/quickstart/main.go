// Quickstart: the paper's core result in thirty lines.
//
// It asks the break-even analysis when a Lucent 11 Mbps radio starts
// beating a Micaz sensor radio, then runs the dual-radio prototype at a
// threshold above the break-even point and shows the measured energy
// savings per packet.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"bulktx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	micaz, err := bulktx.RadioByName("Micaz")
	if err != nil {
		return err
	}
	lucent, err := bulktx.RadioByName("Lucent (11Mbps)")
	if err != nil {
		return err
	}

	// Section 2: where is the break-even point?
	model, err := bulktx.NewBreakEvenModel(micaz, lucent)
	if err != nil {
		return err
	}
	sStar, err := model.BreakEven()
	if err != nil {
		return err
	}
	fmt.Printf("Break-even size s* (%s over %s): %v\n", lucent.Name, micaz.Name, sStar)
	fmt.Printf("Analytic savings at 4 KB: %.0f%%\n\n", model.Savings(4*1024)*100)

	// Section 4.2: measure it through the full protocol stack.
	for _, threshold := range []bulktx.ByteSize{512, 4096} {
		cfg := bulktx.NewPrototypeConfig(threshold)
		res, err := bulktx.RunPrototype(cfg)
		if err != nil {
			return err
		}
		verdict := "wastes energy (below s*)"
		if res.DualEnergyPerPacket < res.SensorEnergyPerPacket {
			verdict = "saves energy"
		}
		fmt.Printf("Buffering %4d B before waking the 802.11 radio: "+
			"%6.1f uJ/packet vs %5.1f uJ/packet on the sensor radio -> %s\n",
			threshold,
			res.DualEnergyPerPacket.Microjoules(),
			res.SensorEnergyPerPacket.Microjoules(),
			verdict)
	}
	return nil
}
