// Delaybound: the paper's closing question, answered with data.
//
// Section 5 asks: "is it best to send immediately with the low-power
// radio or to buffer as much as allowed by the delay constraints and
// send with the high-power radio?" — and leaves it as future work. This
// example runs the delay-constrained extension across bounds and shows
// the measured trade-off: tight bounds are honored by rerouting overdue
// packets over the sensor radio, at a quantified energy premium.
//
// Run with: go run ./examples/delaybound
package main

import (
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delaybound:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		senders = 5
		burst   = 1000 // accumulates for ~2 min at 2 Kbps: a slow drip
		runs    = 3
	)
	fmt.Printf("Delay-constrained BCP: %d senders, burst threshold %d packets\n\n", senders, burst)
	fmt.Printf("%-16s %12s %18s %16s %14s\n",
		"delay bound", "goodput", "energy (J/Kbit)", "mean delay", "sensor sends")

	for _, bound := range []time.Duration{0, 60 * time.Second, 15 * time.Second, 5 * time.Second} {
		scenario, err := bulktx.NewScenario(
			bulktx.WithSenders(senders),
			bulktx.WithBurst(burst),
			bulktx.WithWorkload(bulktx.CBRWorkload(2*bulktx.Kbps)),
			bulktx.WithDuration(600*time.Second),
			bulktx.WithDelayBound(bound),
		)
		if err != nil {
			return err
		}
		results, err := bulktx.RunScenarioMany(scenario, runs, 1)
		if err != nil {
			return err
		}
		goodput, energyPerKbit, _, delay := netsim.Summaries(results)
		var sensorSends uint64
		for _, r := range results {
			sensorSends += r.AgentStats.SensorSends
		}
		label := "none (pure BCP)"
		if bound > 0 {
			label = bound.String()
		}
		fmt.Printf("%-16s %12.3f %18.5f %16v %14d\n",
			label, goodput.Mean, energyPerKbit.Mean,
			delay.Round(100*time.Millisecond), sensorSends/uint64(runs))
	}

	fmt.Println("\nThe bound is honored by pulling overdue packets onto the always-on" +
		"\nsensor radio; the energy column is the measured price of the guarantee." +
		"\nWith ample traffic the threshold fires first and the bound costs nothing.")
	return nil
}
