// Tracing: where every joule actually goes.
//
// The paper's claim is an attribution claim — bulk transfer wins
// because of where per-radio, per-state energy is spent (wake-ups,
// idling, rx/tx) — yet whole-run scalars cannot show it. This example
// traces one dual-radio run and answers three questions the headline
// metrics cannot: which nodes spend the energy, in which power states,
// and what each hop of a packet's journey costs in latency.
//
// Run with: go run ./examples/tracing
package main

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"time"

	"bulktx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracing:", err)
		os.Exit(1)
	}
}

func run() error {
	// The paper's single-hop scenario, traced: 5 senders at 2 Kbps so
	// the alpha-s* threshold fires well within 300 s.
	cfg := bulktx.NewSimConfig(bulktx.ModelDual, 5, 100, 1)
	cfg.Duration = 300 * time.Second
	cfg.Rate = 2 * bulktx.Kbps
	s, err := cfg.Scenario(bulktx.WithTrace(bulktx.TraceOptions{
		Packets:     true,
		States:      true,
		SampleEvery: 30 * time.Second,
	}))
	if err != nil {
		return err
	}
	res, err := bulktx.RunScenario(s)
	if err != nil {
		return err
	}

	fmt.Printf("run: goodput %.4f, %.4f J/Kbit, total %v\n",
		res.Goodput(), res.NormalizedEnergy(), res.TotalEnergy)
	fmt.Printf("breakdown sums to %v — every joule attributed\n\n", bulktx.TotalPerNode(res.PerNode))

	// Question 1: which nodes carry the energy bill? (Spoiler: the
	// sink and the senders; everyone else sleeps through the run.)
	perNode := append([]bulktx.NodeEnergy(nil), res.PerNode...)
	sort.SliceStable(perNode, func(i, j int) bool { return perNode[i].Total > perNode[j].Total })
	top := perNode[:5]
	fmt.Println("top-5 energy consumers:")
	fmt.Print(bulktx.EnergyBreakdownTable(top))

	// Question 2: what does the event stream say about packet journeys?
	var forwards, delivered int
	var hopLatency time.Duration
	for _, ev := range res.Trace.Events {
		switch ev.Kind.String() {
		case "forwarded":
			forwards++
			hopLatency += ev.HopLatency
		case "delivered":
			delivered++
		}
	}
	fmt.Printf("\nprovenance: %d deliveries, %d store-and-forward hops", delivered, forwards)
	if forwards > 0 {
		fmt.Printf(" (mean per-hop latency %v)", (hopLatency / time.Duration(forwards)).Round(time.Millisecond))
	}
	fmt.Println()

	// Question 3: how does consumption accumulate over time? The
	// sample stream carries one cumulative point per radio per tick —
	// the raw material of an energy-timeline plot.
	fmt.Printf("time series: %d samples across %d ticks\n",
		len(res.Trace.Samples), len(res.Trace.Samples)/(cfg.Nodes*2))

	// The same data exports as JSONL/CSV through the sweep exporters
	// (bcp-sim -trace-jsonl does this from the command line).
	var buf bytes.Buffer
	if err := bulktx.WriteTraceJSONL(&buf, []bulktx.TracedRun{{Label: "example", Result: res}}); err != nil {
		return err
	}
	fmt.Printf("JSONL export: %d bytes of per-node evidence\n", buf.Len())
	return nil
}
