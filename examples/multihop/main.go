// Multihop: the paper's Section 2.2 linear scenario and Section 3 route
// optimization, end to end.
//
// A source and a destination sit 200 m apart: five hops for a 40 m
// sensor radio, one hop for a 250 m Cabletron 802.11 radio. The example
// first reproduces the analytic conclusion (the 2 Mbps radios become
// worthwhile once forward progress is counted), then simulates the grid
// network in the multi-hop configuration and demonstrates shortcut
// learning: bursts start on sensor-tree next hops and converge to the
// one-hop wifi route.
//
// Run with: go run ./examples/multihop
package main

import (
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multihop:", err)
		os.Exit(1)
	}
}

func run() error {
	micaz, err := bulktx.RadioByName("Micaz")
	if err != nil {
		return err
	}
	cabletron, err := bulktx.RadioByName("Cabletron")
	if err != nil {
		return err
	}
	model, err := bulktx.NewBreakEvenModel(micaz, cabletron)
	if err != nil {
		return err
	}

	fmt.Println("Analysis (Section 2.2): Cabletron over Micaz, 200 m source-destination")
	for fp := 1; fp <= 6; fp++ {
		sStar, err := model.BreakEvenMH(fp)
		if err != nil {
			fmt.Printf("  forward progress %d hop(s): infeasible — Micaz is cheaper per bit\n", fp)
			continue
		}
		fmt.Printf("  forward progress %d hop(s): s* = %v\n", fp, sStar)
	}

	fmt.Println("\nSimulation (Section 4.1 MH case): 36-node grid, Cabletron one hop to sink")
	const senders, burst = 10, 500
	for _, learner := range []bool{false, true} {
		// The multi-hop case, spelled out on the Scenario builder: the
		// paper's grid and placement defaults, Cabletron at long range.
		scenario, err := bulktx.NewScenario(
			bulktx.WithSenders(senders),
			bulktx.WithBurst(burst),
			bulktx.WithSeed(1),
			bulktx.WithDuration(600*time.Second),
			bulktx.WithRadios(micaz, cabletron),
			bulktx.WithWifiRange(250),
			bulktx.WithWorkload(bulktx.CBRWorkload(2*bulktx.Kbps)),
			bulktx.WithShortcutLearner(learner),
		)
		if err != nil {
			return err
		}
		results, err := bulktx.RunScenarioMany(scenario, 3, 1)
		if err != nil {
			return err
		}
		goodput, energyPerKbit, _, delay := netsim.Summaries(results)
		label := "wifi tree (evaluation default)"
		if learner {
			label = "shortcut learning from sensor routes"
		}
		fmt.Printf("  %-38s goodput=%.3f energy=%.5f J/Kbit delay=%v\n",
			label, goodput.Mean, energyPerKbit.Mean, delay.Round(time.Second))
	}

	fmt.Println("\nWith learning, early bursts relay store-and-forward over short hops;" +
		"\nafter each node's first burst it adopts the farthest reachable forwarder" +
		"\n(Section 3), converging to the one-hop route the wifi tree starts with.")
	return nil
}
