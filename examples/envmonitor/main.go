// Envmonitor: the paper's motivating application class — long-lived
// environmental monitoring, where "a collection delay of even several
// days is not detrimental, especially if it increases system lifetime".
//
// A 36-node grid samples slowly (0.2 Kbps per node) toward a central
// sink. The example compares the pure sensor network against BCP with a
// large burst threshold and reports the lifetime-relevant outcome: how
// much energy each delivered kilobit costs, and what collection delay
// buys the savings.
//
// Run with: go run ./examples/envmonitor
package main

import (
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "envmonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		senders = 20
		burst   = 500 // 16 KB accumulated before each 802.11 burst
		runs    = 3
	)
	duration := 2 * time.Hour // one (simulated) afternoon of monitoring

	fmt.Printf("Environmental monitoring: %d sensors, %v each, %v of sampling\n\n",
		senders, bulktx.BitRate(200), duration)

	// Both models share one scenario shape; only the model differs. The
	// builder makes the shared defaults (paper grid, near-center sink,
	// 0.2 Kbps CBR) explicit instead of implied by zero values.
	sensorScenario, err := bulktx.NewScenario(
		bulktx.WithModel(bulktx.ModelSensor),
		bulktx.WithSenders(senders),
		bulktx.WithDuration(duration),
	)
	if err != nil {
		return err
	}
	sensorRes, err := bulktx.RunScenarioMany(sensorScenario, runs, 1)
	if err != nil {
		return err
	}
	sGoodput, sEnergy, sIdeal, sDelay := netsim.Summaries(sensorRes)

	dualScenario, err := bulktx.NewScenario(
		bulktx.WithModel(bulktx.ModelDual),
		bulktx.WithSenders(senders),
		bulktx.WithBurst(burst),
		bulktx.WithDuration(duration),
	)
	if err != nil {
		return err
	}
	dualRes, err := bulktx.RunScenarioMany(dualScenario, runs, 1)
	if err != nil {
		return err
	}
	dGoodput, dEnergy, _, dDelay := netsim.Summaries(dualRes)

	fmt.Printf("%-22s %12s %18s %14s\n", "model", "goodput", "energy (J/Kbit)", "mean delay")
	fmt.Printf("%-22s %12.3f %18.5f %14v\n",
		"sensor (header cost)", sGoodput.Mean, sEnergy.Mean, sDelay.Round(time.Millisecond))
	fmt.Printf("%-22s %12.3f %18.5f %14v\n",
		"sensor (ideal)", sGoodput.Mean, sIdeal.Mean, sDelay.Round(time.Millisecond))
	fmt.Printf("%-22s %12.3f %18.5f %14v\n",
		fmt.Sprintf("BCP dual (burst %d)", burst), dGoodput.Mean, dEnergy.Mean,
		dDelay.Round(time.Second))

	if dEnergy.Mean < sIdeal.Mean {
		fmt.Printf("\nBCP delivers each kilobit %.1fx cheaper than even the idealized "+
			"sensor network,\nat the cost of %v of collection delay — irrelevant for "+
			"phenomena measured over weeks.\n",
			sIdeal.Mean/dEnergy.Mean, dDelay.Round(time.Second))
	} else {
		fmt.Printf("\nBCP cost %.5f J/Kbit vs idealized sensor %.5f J/Kbit.\n",
			dEnergy.Mean, sIdeal.Mean)
	}
	return nil
}
