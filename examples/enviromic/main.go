// Enviromic: the paper's fast-accumulation application class, named
// after the EnviroMic acoustic sensor network it cites: "Recent
// applications, such as EnviroMic, where audio is being transmitted
// through the network, accumulate data much faster making performance
// almost real-time despite data buffering."
//
// Each node streams compressed audio (8 Kbps) toward the sink over BCP.
// The example shows that at audio rates the alpha-s* buffer fills in
// seconds, so bulk transfer keeps both near-real-time delay and a large
// energy advantage.
//
// Run with: go run ./examples/enviromic
package main

import (
	"fmt"
	"os"
	"time"

	"bulktx"
	"bulktx/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "enviromic:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		senders   = 8
		audioRate = 8 * bulktx.Kbps
		runs      = 3
	)
	duration := 10 * time.Minute

	fmt.Printf("Acoustic monitoring: %d microphones at %v each, %v recording\n\n",
		senders, audioRate, duration)
	fmt.Printf("%-18s %12s %18s %14s\n", "burst (packets)", "goodput", "energy (J/Kbit)", "mean delay")

	for _, burst := range []int{100, 500, 1000} {
		scenario, err := bulktx.NewScenario(
			bulktx.WithModel(bulktx.ModelDual),
			bulktx.WithSenders(senders),
			bulktx.WithBurst(burst),
			bulktx.WithWorkload(bulktx.CBRWorkload(audioRate)),
			bulktx.WithDuration(duration),
		)
		if err != nil {
			return err
		}
		results, err := bulktx.RunScenarioMany(scenario, runs, 1)
		if err != nil {
			return err
		}
		goodput, energyPerKbit, _, delay := netsim.Summaries(results)
		accumulation := time.Duration(float64(burst*32*8) / audioRate.BitsPerSecond() *
			float64(time.Second))
		fmt.Printf("%-18d %12.3f %18.5f %14v   (buffer fills in %v)\n",
			burst, goodput.Mean, energyPerKbit.Mean,
			delay.Round(100*time.Millisecond), accumulation.Round(100*time.Millisecond))
	}

	sensorScenario, err := bulktx.NewScenario(
		bulktx.WithModel(bulktx.ModelSensor),
		bulktx.WithSenders(senders),
		bulktx.WithWorkload(bulktx.CBRWorkload(audioRate)),
		bulktx.WithDuration(duration),
	)
	if err != nil {
		return err
	}
	sensorRes, err := bulktx.RunScenarioMany(sensorScenario, runs, 1)
	if err != nil {
		return err
	}
	sGoodput, sEnergy, _, sDelay := netsim.Summaries(sensorRes)
	fmt.Printf("%-18s %12.3f %18.5f %14v\n",
		"sensor baseline", sGoodput.Mean, sEnergy.Mean, sDelay.Round(100*time.Millisecond))

	fmt.Println("\nAt audio rates the buffer crosses alpha-s* in seconds: BCP stays " +
		"near-real-time while shipping bits for a fraction of the sensor radio's energy.")
	return nil
}
