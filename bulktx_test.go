package bulktx_test

import (
	"strings"
	"testing"
	"time"

	"bulktx"
)

func TestTable1(t *testing.T) {
	profiles := bulktx.Table1()
	if len(profiles) != 6 {
		t.Fatalf("Table1 has %d radios, want 6", len(profiles))
	}
	if _, err := bulktx.RadioByName("Micaz"); err != nil {
		t.Errorf("RadioByName(Micaz): %v", err)
	}
	if _, err := bulktx.RadioByName("nope"); err == nil {
		t.Error("RadioByName(nope) did not error")
	}
}

func TestBreakEvenThroughFacade(t *testing.T) {
	micaz, err := bulktx.RadioByName("Micaz")
	if err != nil {
		t.Fatal(err)
	}
	lucent, err := bulktx.RadioByName("Lucent (11Mbps)")
	if err != nil {
		t.Fatal(err)
	}
	m, err := bulktx.NewBreakEvenModel(micaz, lucent,
		bulktx.WithIdleTime(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("s* = %v", s)
	}
}

func TestSimulationThroughFacade(t *testing.T) {
	cfg := bulktx.NewSimConfig(bulktx.ModelDual, 5, 100, 1)
	cfg.Duration = 120 * time.Second
	cfg.Rate = 2 * bulktx.Kbps
	res, err := bulktx.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput() <= 0.5 {
		t.Errorf("goodput = %.3f", res.Goodput())
	}
	many, err := bulktx.RunSimulations(cfg, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 2 {
		t.Fatalf("runs = %d", len(many))
	}
}

func TestScenarioThroughFacade(t *testing.T) {
	s, err := bulktx.NewScenario(
		bulktx.WithModel(bulktx.ModelDual),
		bulktx.WithTopology(bulktx.ClusteredTopology(36, 4, 200, 25, 1)),
		bulktx.WithSink(bulktx.SinkNearCenter()),
		bulktx.WithSenders(5),
		bulktx.WithWorkload(bulktx.CBRWorkload(2*bulktx.Kbps)),
		bulktx.WithLinks(bulktx.LinkModel{SensorLossAt: bulktx.DistanceLoss(0, 0.1, 40)}),
		bulktx.WithChurn(bulktx.RandomChurn(2, 30*time.Second, 7)),
		bulktx.WithDuration(120*time.Second),
		bulktx.WithBurst(100),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bulktx.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput() <= 0.5 {
		t.Errorf("goodput = %.3f", res.Goodput())
	}
	many, err := bulktx.RunScenarioMany(s, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 2 {
		t.Fatalf("runs = %d", len(many))
	}
	if _, err := bulktx.NewScenario(bulktx.WithSenders(-1)); err == nil {
		t.Error("invalid scenario accepted through facade")
	}
	// The compatibility compile is exposed on the flat config.
	cfg := bulktx.NewSimConfig(bulktx.ModelDual, 5, 100, 1)
	compiled, err := cfg.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Nodes() != cfg.Nodes || compiled.TopologyKind() != "grid" {
		t.Errorf("compiled scenario: %d nodes, %q", compiled.Nodes(), compiled.TopologyKind())
	}
}

func TestMultiHopConfigThroughFacade(t *testing.T) {
	cfg := bulktx.NewMultiHopSimConfig(5, 100, 1)
	if cfg.WifiRange != 250 {
		t.Errorf("MH wifi range = %v, want 250 m", cfg.WifiRange)
	}
}

func TestPrototypeThroughFacade(t *testing.T) {
	cfg := bulktx.NewPrototypeConfig(2000)
	cfg.Messages = 100
	res, err := bulktx.RunPrototype(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 100 {
		t.Errorf("delivered %d/100", res.Delivered)
	}
	if res.DualEnergyPerPacket <= 0 || res.SensorEnergyPerPacket <= 0 {
		t.Error("energy per packet not positive")
	}
}

func TestExperimentsThroughFacade(t *testing.T) {
	names := bulktx.Experiments()
	if len(names) < 13 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	tbl, err := bulktx.RunExperiment("table1", bulktx.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "1400") {
		t.Error("table1 render missing data")
	}
	if _, err := bulktx.RunExperiment("nope", bulktx.QuickScale()); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestScales(t *testing.T) {
	full := bulktx.FullScale()
	quick := bulktx.QuickScale()
	if full.Duration != 5000*time.Second || full.Runs != 20 {
		t.Errorf("FullScale = %+v, want the paper's 5000 s / 20 runs", full)
	}
	if quick.Duration >= full.Duration || quick.Runs >= full.Runs {
		t.Error("QuickScale not smaller than FullScale")
	}
}
