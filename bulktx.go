package bulktx

import (
	"time"

	"bulktx/internal/analysis"
	"bulktx/internal/energy"
	"bulktx/internal/experiments"
	"bulktx/internal/metrics"
	"bulktx/internal/mote"
	"bulktx/internal/netsim"
	"bulktx/internal/report"
	"bulktx/internal/service"
	"bulktx/internal/sweep"
	"bulktx/internal/topo"
	"bulktx/internal/trace"
	"bulktx/internal/units"
)

// Re-exported core types. The implementation lives under internal/; the
// aliases below are the supported public surface.
type (
	// RadioProfile is one row of the paper's Table 1: a radio's rate,
	// power draws, wake-up energy and range.
	RadioProfile = energy.Profile

	// BreakEvenModel evaluates the Section 2 energy equations for one
	// low-power/high-power radio pair.
	BreakEvenModel = analysis.Model

	// ModelOption configures a BreakEvenModel.
	ModelOption = analysis.Option

	// SimConfig describes one network simulation run (Section 4.1).
	SimConfig = netsim.Config

	// SimResult carries a simulation run's metrics and counters.
	SimResult = netsim.Result

	// SimModel selects the evaluation model (sensor / 802.11 / dual).
	SimModel = netsim.Model

	// PrototypeConfig describes one mote prototype run (Section 4.2).
	PrototypeConfig = mote.Config

	// PrototypeResult carries a prototype run's outcomes.
	PrototypeResult = mote.Result

	// ResultTable is a printable reproduction of one paper artifact.
	ResultTable = metrics.Table

	// ExperimentScale trades fidelity for wall-clock time when
	// regenerating the simulation figures.
	ExperimentScale = experiments.Scale

	// SweepSpec declares a grid of seeded simulation runs over a base
	// SimConfig template (axes over model, senders, bursts, traffic).
	SweepSpec = sweep.Spec

	// SweepPool executes sweep jobs on a fixed-size worker pool with
	// optional result caching.
	SweepPool = sweep.Pool

	// SweepOutcome is an executed sweep: per-job results plus grouped
	// per-cell summaries and JSON/CSV/table exporters.
	SweepOutcome = sweep.Outcome

	// SweepCache memoizes simulation results by a content key over the
	// full run configuration.
	SweepCache = sweep.Cache

	// SweepJobUpdate is one resolved job's progress record, delivered
	// by SweepPool.RunJobsProgress as cells complete.
	SweepJobUpdate = sweep.JobUpdate

	// ConfigFieldError is a validation failure annotated with the
	// offending configuration or spec field name (extract with
	// errors.As); the HTTP service turns these into 400 bodies.
	ConfigFieldError = netsim.FieldError

	// SimService is the HTTP simulation service behind cmd/bcp-serve:
	// content-keyed job submission over the shared sweep pool and
	// cache, SSE progress streams, artifact exports, backpressure and
	// graceful drain. It implements http.Handler; see docs/API.md.
	SimService = service.Server

	// SimServiceOptions configures a SimService (pool size, cache,
	// queue and cell limits).
	SimServiceOptions = service.Options

	// SimServiceJobStatus is the serialized status of one service job.
	SimServiceJobStatus = service.JobStatus

	// SimServiceRunRequest is the body of the service's POST /v1/runs.
	SimServiceRunRequest = service.RunRequest

	// Scenario is a fully resolved simulation setup assembled from
	// pluggable parts (topology, placement, workload, links, churn) by
	// NewScenario.
	Scenario = netsim.Scenario

	// ScenarioOption configures a Scenario under construction (the
	// With* functional options).
	ScenarioOption = netsim.Option

	// Topology is the pluggable node-placement part of a Scenario.
	Topology = netsim.Topology

	// SinkPolicy selects the collection node of a Scenario.
	SinkPolicy = netsim.SinkPolicy

	// SenderPolicy selects which nodes generate traffic.
	SenderPolicy = netsim.SenderPolicy

	// Workload is a Scenario's traffic model: arrival process plus
	// homogeneous or per-sender rates.
	Workload = netsim.Workload

	// LinkModel is a Scenario's channel-quality model: flat or
	// distance-dependent per-channel loss.
	LinkModel = netsim.LinkModel

	// Churn is a Scenario's node failure/recovery model.
	Churn = netsim.Churn

	// ChurnEvent is one scheduled failure or recovery.
	ChurnEvent = netsim.ChurnEvent

	// Position is a node location on the deployment plane (for
	// ExplicitTopology).
	Position = topo.Position

	// TraceOptions selects what a traced run records (per-node energy
	// breakdowns always; packet provenance, state transitions and
	// periodic samples on demand).
	TraceOptions = trace.Options

	// TraceRecording is the event/sample stream of one traced run
	// (SimResult.Trace).
	TraceRecording = trace.Recording

	// TraceEvent is one trace record: a packet-provenance or radio
	// state-transition event.
	TraceEvent = trace.Event

	// NodeEnergy is one node's per-radio per-state energy breakdown
	// (SimResult.PerNode).
	NodeEnergy = metrics.NodeEnergy

	// TracedRun pairs an export label with a traced run's result for
	// the trace exporters.
	TracedRun = sweep.TracedRun

	// Energy is an amount of energy in joules.
	Energy = units.Energy

	// Meters is a distance in meters.
	Meters = units.Meters

	// ByteSize is a quantity of data in bytes.
	ByteSize = units.ByteSize

	// BitRate is a data rate in bits per second.
	BitRate = units.BitRate
)

// Common rate units.
const (
	Kbps = units.Kbps
	Mbps = units.Mbps
)

// Evaluation models.
const (
	ModelSensor = netsim.ModelSensor
	ModelWifi   = netsim.ModelWifi
	ModelDual   = netsim.ModelDual
)

// Traffic is the sender arrival process.
type Traffic = netsim.Traffic

// Traffic models: the paper's CBR plus Poisson and on/off burst sources.
const (
	TrafficCBR     = netsim.TrafficCBR
	TrafficPoisson = netsim.TrafficPoisson
	TrafficOnOff   = netsim.TrafficOnOff
)

// The composable Scenario surface, re-exported from the simulation
// core. NewScenario assembles pluggable parts under functional options
// and validates the whole at build time:
//
//	s, err := bulktx.NewScenario(
//		bulktx.WithTopology(bulktx.ClusteredTopology(36, 4, 200, 25, 1)),
//		bulktx.WithSenders(10),
//		bulktx.WithWorkload(bulktx.PoissonWorkload(2*bulktx.Kbps)),
//		bulktx.WithChurn(bulktx.RandomChurn(2, 30*time.Second, 7)),
//	)
//	res, err := bulktx.RunScenario(s)
var (
	// NewScenario assembles and validates a Scenario; see the netsim
	// package documentation for defaults (the paper's single-hop
	// evaluation).
	NewScenario = netsim.NewScenario
	// RunScenario executes one simulation of a built Scenario.
	RunScenario = netsim.RunScenario
	// RunScenarioMany executes seeded repetitions of a Scenario
	// concurrently, in seed order.
	RunScenarioMany = netsim.RunScenarioMany

	// Topologies: the paper's grid, uniform-random and clustered
	// geometric deployments, corridors, and explicit positions.
	GridTopology      = netsim.GridTopology
	UniformTopology   = netsim.UniformTopology
	ClusteredTopology = netsim.ClusteredTopology
	LinearTopology    = netsim.LinearTopology
	ExplicitTopology  = netsim.ExplicitTopology

	// Placement: sink and sender selection strategies.
	SinkNearCenter       = netsim.SinkNearCenter
	SinkAt               = netsim.SinkAt
	StableShuffleSenders = netsim.StableShuffleSenders
	ShuffledSenders      = netsim.ShuffledSenders
	ExplicitSenders      = netsim.ExplicitSenders
	FarthestSenders      = netsim.FarthestSenders

	// Workloads and links.
	CBRWorkload     = netsim.CBRWorkload
	PoissonWorkload = netsim.PoissonWorkload
	OnOffWorkload   = netsim.OnOffWorkload
	DistanceLoss    = netsim.DistanceLoss

	// Churn models.
	ScheduledChurn = netsim.ScheduledChurn
	RandomChurn    = netsim.RandomChurn

	// Scenario options.
	WithModel             = netsim.WithModel
	WithTopology          = netsim.WithTopology
	WithSink              = netsim.WithSink
	WithSenders           = netsim.WithSenders
	WithSenderPolicy      = netsim.WithSenderPolicy
	WithWorkload          = netsim.WithWorkload
	WithLinks             = netsim.WithLinks
	WithChurn             = netsim.WithChurn
	WithDuration          = netsim.WithDuration
	WithBurst             = netsim.WithBurst
	WithSeed              = netsim.WithSeed
	WithRadios            = netsim.WithRadios
	WithWifiRange         = netsim.WithWifiRange
	WithPostBurstLinger   = netsim.WithPostBurstLinger
	WithShortcutLearner   = netsim.WithShortcutLearner
	WithMinGrant          = netsim.WithMinGrant
	WithAdaptiveThreshold = netsim.WithAdaptiveThreshold
	WithDelayBound        = netsim.WithDelayBound
	// WithTrace enables per-run observability (see TraceOptions);
	// untraced scenarios pay nothing.
	WithTrace = netsim.WithTrace

	// Trace exporters: JSONL and CSV serializations of traced runs,
	// plus the shared write-to-files helper behind the CLI flags.
	WriteTraceJSONL    = sweep.WriteTraceJSONL
	WriteNodeEnergyCSV = sweep.WriteNodeEnergyCSV
	WriteTraceEvents   = sweep.WriteTraceEventsCSV
	ExportTraceFiles   = sweep.ExportTraceFiles
	TraceOptionsFor    = sweep.TraceOptionsFor

	// EnergyBreakdownTable renders a per-node breakdown as a
	// fixed-width table; TotalPerNode sums one back to a run total.
	EnergyBreakdownTable = metrics.EnergyBreakdownTable
	TotalPerNode         = metrics.TotalPerNode
)

// Table1 returns the paper's Table 1 radio profiles.
func Table1() []RadioProfile { return energy.Table1() }

// RadioByName retrieves a Table 1 profile ("Micaz", "Lucent (11Mbps)",
// "Cabletron", ...).
func RadioByName(name string) (RadioProfile, error) {
	return energy.ProfileByName(name)
}

// NewBreakEvenModel builds a Section 2 analysis model over a low-power
// and a high-power radio profile.
func NewBreakEvenModel(low, high RadioProfile, opts ...ModelOption) (*BreakEvenModel, error) {
	return analysis.NewModel(low, high, opts...)
}

// WithIdleTime charges the high-power radios for idling this long per
// transfer (Figure 2 sweeps it).
func WithIdleTime(d time.Duration) ModelOption { return analysis.WithIdleTime(d) }

// WithOverhearing charges fixed per-transfer overhearing energies.
func WithOverhearing(low, high Energy) ModelOption {
	return analysis.WithOverhearing(low, high)
}

// NewSimConfig returns the paper's single-hop scenario (Lucent 11 Mbps,
// 36-node grid) for a model, sender count, burst size and seed.
func NewSimConfig(model SimModel, senders, burstPackets int, seed int64) SimConfig {
	return netsim.DefaultConfig(model, senders, burstPackets, seed)
}

// NewMultiHopSimConfig returns the paper's multi-hop scenario (Cabletron
// reaching the sink in one hop).
func NewMultiHopSimConfig(senders, burstPackets int, seed int64) SimConfig {
	return netsim.MultiHopConfig(senders, burstPackets, seed)
}

// RunSimulation executes one network simulation run.
func RunSimulation(cfg SimConfig) (SimResult, error) { return netsim.Run(cfg) }

// RunSimulations executes n seeded repetitions.
func RunSimulations(cfg SimConfig, runs int, baseSeed int64) ([]SimResult, error) {
	return netsim.RunMany(cfg, runs, baseSeed)
}

// NewPrototypeConfig returns the paper's Section 4.2 prototype setup for
// an alpha-s* threshold in bytes.
func NewPrototypeConfig(threshold ByteSize) PrototypeConfig {
	return mote.DefaultConfig(threshold)
}

// RunPrototype executes one mote prototype run.
func RunPrototype(cfg PrototypeConfig) (PrototypeResult, error) { return mote.Run(cfg) }

// NewSimService builds and starts the HTTP simulation service (the
// zero-value options select all cores, an in-memory cache and the
// default limits). Serve it with http.Server{Handler: svc} and drain
// it with svc.Close(ctx) before exit. Construction fails only when a
// configured StateDir cannot be opened or its job journal is
// unreadable.
func NewSimService(o SimServiceOptions) (*SimService, error) { return service.New(o) }

// SweepReportMarkdown renders an executed sweep outcome as a
// byte-stable markdown document (the service's report.md artifact).
func SweepReportMarkdown(title string, o *SweepOutcome) []byte {
	return report.SweepMarkdown(title, o)
}

// RunSweep executes a sweep spec on a default pool (all cores,
// in-memory cache) and returns the grouped outcome. Construct a
// SweepPool directly to control concurrency, progress reporting or
// disk caching.
func RunSweep(spec SweepSpec) (*SweepOutcome, error) {
	pool := &sweep.Pool{Cache: sweep.NewCache()}
	return pool.RunSpec(spec)
}

// NewSweepCache returns an in-memory (process-lifetime) sweep result
// cache.
func NewSweepCache() *SweepCache { return sweep.NewCache() }

// NewSweepDiskCache returns a sweep result cache persisted under dir
// in addition to memory; deleting the directory is always safe.
func NewSweepDiskCache(dir string) (*SweepCache, error) { return sweep.NewDiskCache(dir) }

// ConfigureExperiments replaces the worker-pool size (0 = all cores)
// and result cache (nil = fresh in-memory) behind RunExperiment's
// simulation figures and ablations.
func ConfigureExperiments(workers int, cache *SweepCache) {
	experiments.ConfigureEngine(workers, cache)
}

// Experiments lists the regenerable paper artifacts and ablations.
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one paper artifact by name ("table1",
// "fig1" ... "fig12", "ablation-*").
func RunExperiment(name string, scale ExperimentScale) (ResultTable, error) {
	return experiments.Run(name, scale)
}

// QuickScale regenerates the simulation figures in seconds of wall-clock
// while preserving every qualitative shape.
func QuickScale() ExperimentScale { return experiments.QuickScale() }

// FullScale regenerates the simulation figures at the paper's exact
// scenario (5000 s simulated, 20 runs per point).
func FullScale() ExperimentScale { return experiments.FullScale() }
